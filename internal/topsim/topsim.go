// Package topsim implements TopSim [Lee, Lakshmanan & Yu, ICDE 2012], the
// index-free truncated-expansion baseline the paper compares against.
//
// TopSim expands the distribution of reverse walks from the query node up to
// depth T, pruning low-probability entries (below Eta), skipping expansion
// through very high degree nodes (in-degree above 1/h) and keeping at most H
// entries per level. For every level ℓ and reached node w it then expands
// forward again (with the same pruning) to obtain the probability that a walk
// from each node v reaches w at level ℓ, and accumulates c^ℓ times the product
// of the two path probabilities. Like the original algorithm at small depth,
// the estimate ignores repeated meetings beyond the truncation depth, which is
// why its accuracy saturates in Figures 2-3 of the paper.
package topsim

import (
	"fmt"
	"sort"
	"time"

	"prsim/internal/graph"
)

// Options configures TopSim. The defaults follow the paper's experimental
// settings (T=3, 1/h=100, η=0.001, H=100).
type Options struct {
	// C is the SimRank decay factor.
	C float64
	// T is the expansion depth.
	T int
	// InvH is the in-degree threshold 1/h above which a node is treated as a
	// high-degree node and not expanded.
	InvH int
	// Eta is the probability threshold below which entries are pruned.
	Eta float64
	// H is the maximum number of entries kept per level.
	H int
}

func (o Options) fill() (Options, error) {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.C <= 0 || o.C >= 1 {
		return o, fmt.Errorf("topsim: decay factor c=%v outside (0,1)", o.C)
	}
	if o.T == 0 {
		o.T = 3
	}
	if o.InvH == 0 {
		o.InvH = 100
	}
	if o.Eta == 0 {
		o.Eta = 0.001
	}
	if o.H == 0 {
		o.H = 100
	}
	if o.T < 1 || o.InvH < 1 || o.Eta < 0 || o.H < 1 {
		return o, fmt.Errorf("topsim: invalid parameters %+v", o)
	}
	return o, nil
}

// Estimator answers single-source queries without an index.
type Estimator struct {
	g    *graph.Graph
	opts Options
}

// Stats reports the work done by the most recent query.
type Stats struct {
	Expansions int
	Time       time.Duration
}

// New returns a TopSim estimator.
func New(g *graph.Graph, opts Options) (*Estimator, error) {
	if g == nil {
		return nil, fmt.Errorf("topsim: nil graph")
	}
	opts, err := opts.fill()
	if err != nil {
		return nil, err
	}
	return &Estimator{g: g, opts: opts}, nil
}

// SingleSource answers a single-source SimRank query from u.
func (e *Estimator) SingleSource(u int) (map[int]float64, error) {
	scores, _, err := e.SingleSourceWithStats(u)
	return scores, err
}

// SingleSourceWithStats is SingleSource plus cost accounting.
func (e *Estimator) SingleSourceWithStats(u int) (map[int]float64, Stats, error) {
	if err := e.g.CheckNode(u); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	stats := Stats{}
	opts := e.opts

	scores := make(map[int]float64)
	// Backward expansion from u: dist[w] = probability that a uniform reverse
	// walk from u is at w after ℓ steps (no decay; the decay c^ℓ is applied
	// when levels are combined).
	dist := map[int]float64{u: 1}
	decay := 1.0
	for level := 1; level <= opts.T; level++ {
		dist = e.expandBackward(dist, &stats)
		decay *= opts.C
		if len(dist) == 0 {
			break
		}
		for w, pu := range dist {
			// Forward expansion from w: probability that a reverse walk from
			// v reaches w in exactly `level` steps.
			reach := e.expandForward(w, level, &stats)
			for v, pv := range reach {
				if v == u {
					continue
				}
				scores[v] += decay * pu * pv
			}
		}
	}
	for v, s := range scores {
		if s > 1 {
			scores[v] = 1
		}
	}
	scores[u] = 1
	stats.Time = time.Since(start)
	return scores, stats, nil
}

// expandBackward advances the reverse-walk distribution by one step with
// TopSim's pruning rules.
func (e *Estimator) expandBackward(dist map[int]float64, stats *Stats) map[int]float64 {
	opts := e.opts
	next := make(map[int]float64)
	for x, px := range dist {
		in := e.g.InNeighbors(x)
		if len(in) == 0 || len(in) > opts.InvH {
			continue
		}
		share := px / float64(len(in))
		for _, y := range in {
			next[int(y)] += share
			stats.Expansions++
		}
	}
	return prune(next, opts.Eta, opts.H)
}

// expandForward computes, with pruning, the probability that a reverse walk
// from each node v reaches w in exactly `level` steps. The propagation runs
// from w towards the sources along out-edges, dividing by the in-degree of the
// receiving node exactly as the walk would.
func (e *Estimator) expandForward(w, level int, stats *Stats) map[int]float64 {
	opts := e.opts
	cur := map[int]float64{w: 1}
	for i := 0; i < level; i++ {
		next := make(map[int]float64)
		for x, px := range cur {
			for _, zz := range e.g.OutNeighbors(x) {
				z := int(zz)
				din := e.g.InDegree(z)
				if din == 0 || din > opts.InvH {
					continue
				}
				next[z] += px / float64(din)
				stats.Expansions++
			}
		}
		cur = prune(next, opts.Eta, opts.H)
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// prune drops entries below eta and keeps at most h of the largest entries.
func prune(dist map[int]float64, eta float64, h int) map[int]float64 {
	for v, p := range dist {
		if p < eta {
			delete(dist, v)
		}
	}
	if len(dist) <= h {
		return dist
	}
	type kv struct {
		node int
		p    float64
	}
	entries := make([]kv, 0, len(dist))
	for v, p := range dist {
		entries = append(entries, kv{node: v, p: p})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].p != entries[j].p {
			return entries[i].p > entries[j].p
		}
		return entries[i].node < entries[j].node
	})
	out := make(map[int]float64, h)
	for _, e := range entries[:h] {
		out[e.node] = e.p
	}
	return out
}
