package topsim

import (
	"testing"

	"prsim/internal/graph"
	"prsim/internal/powermethod"
)

func testGraph() *graph.Graph {
	g := graph.MustFromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 0}, {From: 3, To: 4}, {From: 4, To: 2}, {From: 1, To: 5},
		{From: 5, To: 2},
	})
	g.SortOutByInDegree()
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGraph()
	if _, err := New(nil, Options{}); err == nil {
		t.Errorf("nil graph should be an error")
	}
	if _, err := New(g, Options{C: 42}); err == nil {
		t.Errorf("invalid decay should be an error")
	}
	if _, err := New(g, Options{T: -1}); err == nil {
		t.Errorf("negative depth should be an error")
	}
	if _, err := New(g, Options{H: -1}); err == nil {
		t.Errorf("negative H should be an error")
	}
}

func TestSingleSourceRanking(t *testing.T) {
	g := testGraph()
	exact, err := powermethod.Compute(g, powermethod.Options{C: 0.6})
	if err != nil {
		t.Fatalf("powermethod: %v", err)
	}
	est, err := New(g, Options{C: 0.6, T: 4, InvH: 100, Eta: 0.0001, H: 100})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, u := range []int{0, 3} {
		scores, stats, err := est.SingleSourceWithStats(u)
		if err != nil {
			t.Fatalf("SingleSource(%d): %v", u, err)
		}
		if scores[u] != 1 {
			t.Errorf("s(u,u) = %v, want 1", scores[u])
		}
		if stats.Expansions <= 0 || stats.Time <= 0 {
			t.Errorf("stats not populated: %+v", stats)
		}
		// Scores are clamped to [0,1].
		for v, s := range scores {
			if s < 0 || s > 1 {
				t.Errorf("score s(%d,%d) = %v outside [0,1]", u, v, s)
			}
		}
		// The exact best match must not be ranked below more than one other
		// node (TopSim is approximate but should preserve the leader).
		bestExact, bestScore := -1, -1.0
		for v := 0; v < g.N(); v++ {
			if v != u && exact.At(u, v) > bestScore {
				bestScore = exact.At(u, v)
				bestExact = v
			}
		}
		higher := 0
		for v := 0; v < g.N(); v++ {
			if v != u && v != bestExact && scores[v] > scores[bestExact] {
				higher++
			}
		}
		if bestScore > 0 && higher > 1 {
			t.Errorf("source %d: %d nodes ranked above the exact best match", u, higher)
		}
	}
}

func TestZeroForUnreachable(t *testing.T) {
	// Disconnected pair of 2-cycles: similarity across components must be 0.
	g := graph.MustFromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 0}, {From: 2, To: 3}, {From: 3, To: 2},
	})
	g.SortOutByInDegree()
	est, _ := New(g, Options{T: 5})
	scores, err := est.SingleSource(0)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if scores[2] != 0 || scores[3] != 0 {
		t.Errorf("cross-component scores must be 0: %v", scores)
	}
}

func TestPrune(t *testing.T) {
	dist := map[int]float64{1: 0.5, 2: 0.0001, 3: 0.3, 4: 0.2, 5: 0.25}
	out := prune(dist, 0.001, 3)
	if len(out) != 3 {
		t.Fatalf("prune kept %d entries, want 3", len(out))
	}
	if _, ok := out[2]; ok {
		t.Errorf("entry below eta survived")
	}
	if _, ok := out[1]; !ok {
		t.Errorf("largest entry was pruned")
	}
}

func TestHighDegreePruning(t *testing.T) {
	// Node 0 has in-degree 5 > InvH=3, so expansion through it is skipped and
	// the walk distribution from node 1 (whose only in-neighbor is 0) is empty
	// after one step, leaving all scores at zero.
	edges := []graph.Edge{{From: 0, To: 1}}
	for i := 2; i < 7; i++ {
		edges = append(edges, graph.Edge{From: i, To: 0})
	}
	g := graph.MustFromEdges(7, edges)
	g.SortOutByInDegree()
	est, _ := New(g, Options{T: 3, InvH: 3})
	scores, err := est.SingleSource(1)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v, s := range scores {
		if v != 1 && s != 0 {
			t.Errorf("expected zero scores when the only path is through a pruned hub, got s(1,%d)=%v", v, s)
		}
	}
}

func TestSingleSourceInvalidNode(t *testing.T) {
	g := testGraph()
	est, _ := New(g, Options{})
	if _, err := est.SingleSource(-1); err == nil {
		t.Errorf("invalid node should be an error")
	}
}
