package reads

import (
	"math"
	"testing"

	"prsim/internal/graph"
	"prsim/internal/powermethod"
)

func testGraph() *graph.Graph {
	g := graph.MustFromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 0}, {From: 3, To: 4}, {From: 4, To: 2}, {From: 1, To: 5},
		{From: 5, To: 2},
	})
	g.SortOutByInDegree()
	return g
}

func TestBuildIndexValidation(t *testing.T) {
	g := testGraph()
	if _, err := BuildIndex(nil, Options{}); err == nil {
		t.Errorf("nil graph should be an error")
	}
	if _, err := BuildIndex(g, Options{C: 9}); err == nil {
		t.Errorf("invalid decay should be an error")
	}
	if _, err := BuildIndex(g, Options{R: -1}); err == nil {
		t.Errorf("negative r should be an error")
	}
	if _, err := BuildIndex(g, Options{T: -1}); err == nil {
		t.Errorf("negative t should be an error")
	}
}

func TestSingleSourceApproximatesExact(t *testing.T) {
	g := testGraph()
	exact, err := powermethod.Compute(g, powermethod.Options{C: 0.6})
	if err != nil {
		t.Fatalf("powermethod: %v", err)
	}
	idx, err := BuildIndex(g, Options{C: 0.6, R: 8000, T: 12, Seed: 17})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	for _, u := range []int{0, 2, 4} {
		scores, err := idx.SingleSource(u)
		if err != nil {
			t.Fatalf("SingleSource(%d): %v", u, err)
		}
		if scores[u] != 1 {
			t.Errorf("s(%d,%d) = %v, want 1", u, u, scores[u])
		}
		for v := 0; v < g.N(); v++ {
			if v == u {
				continue
			}
			if math.Abs(scores[v]-exact.At(u, v)) > 0.06 {
				t.Errorf("s(%d,%d): READS %v, exact %v", u, v, scores[v], exact.At(u, v))
			}
		}
	}
}

func TestIndexSizeGrowsWithR(t *testing.T) {
	g := testGraph()
	small, _ := BuildIndex(g, Options{R: 10, T: 5, Seed: 1})
	large, _ := BuildIndex(g, Options{R: 100, T: 5, Seed: 1})
	if large.Stats().StoredSteps <= small.Stats().StoredSteps {
		t.Errorf("more walk sets must store more steps: %d vs %d",
			large.Stats().StoredSteps, small.Stats().StoredSteps)
	}
	if small.Stats().SizeBytes() <= 0 {
		t.Errorf("SizeBytes must be positive")
	}
	if small.Graph() != g {
		t.Errorf("Graph() returned a different graph")
	}
}

func TestWalkDepthTruncated(t *testing.T) {
	g := testGraph()
	idx, _ := BuildIndex(g, Options{R: 50, T: 2, Seed: 9})
	for _, set := range idx.sets {
		for v, trace := range set.traces {
			if len(trace) > 2 {
				t.Errorf("walk of node %d has depth %d, want <= 2", v, len(trace))
			}
		}
	}
}

func TestSingleSourceInvalidNode(t *testing.T) {
	g := testGraph()
	idx, _ := BuildIndex(g, Options{R: 10, T: 3})
	if _, err := idx.SingleSource(77); err == nil {
		t.Errorf("invalid node should be an error")
	}
}

func TestScoresWithinUnitInterval(t *testing.T) {
	g := testGraph()
	idx, _ := BuildIndex(g, Options{R: 500, T: 10, Seed: 23})
	scores, err := idx.SingleSource(3)
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	for v, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score s(3,%d) = %v outside [0,1]", v, s)
		}
	}
}
