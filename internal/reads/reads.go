// Package reads implements READS [Jiang, Fu & Wong, PVLDB 2017], the
// index-based random-walk baseline the paper compares against (its static
// variant, which [16] reports to be the fastest of the three READS versions).
//
// Preprocessing draws r √c-walks of depth at most t from every node and stores
// them in an inverted index keyed by (walk set, step, node). A single-source
// query from u replays u's stored walk in every set and, for every position,
// looks up the other sources whose walk in the same set visits the same node
// at the same step; the fraction of sets in which the walks meet estimates the
// SimRank value.
package reads

import (
	"fmt"
	"time"

	"prsim/internal/graph"
	"prsim/internal/walk"
)

// Options configures READS index construction.
type Options struct {
	// C is the SimRank decay factor.
	C float64
	// R is the number of walk sets (the paper's parameter r, default 100).
	R int
	// T is the maximum walk depth (the paper's parameter t, default 10).
	T int
	// Seed makes the sampled walks deterministic.
	Seed uint64
}

func (o Options) fill() (Options, error) {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.C <= 0 || o.C >= 1 {
		return o, fmt.Errorf("reads: decay factor c=%v outside (0,1)", o.C)
	}
	if o.R == 0 {
		o.R = 100
	}
	if o.R < 1 {
		return o, fmt.Errorf("reads: r=%d must be positive", o.R)
	}
	if o.T == 0 {
		o.T = 10
	}
	if o.T < 1 {
		return o, fmt.Errorf("reads: t=%d must be positive", o.T)
	}
	return o, nil
}

// stepKey identifies an inverted-index bucket: the node visited at a given
// step within one walk set.
type stepKey struct {
	Step int32
	Node int32
}

// walkSet holds the compressed walks of one set: each source's truncated walk
// plus the inverted index used at query time.
type walkSet struct {
	// traces[v] holds the nodes visited by v's walk at steps 1..len (step 0,
	// the source itself, is implicit).
	traces [][]int32
	// inverted maps (step, node) to the sources whose walk visits node at
	// that step.
	inverted map[stepKey][]int32
}

// Index is a READS index.
type Index struct {
	g    *graph.Graph
	opts Options
	sets []walkSet

	stats Stats
}

// Stats reports preprocessing cost and index size.
type Stats struct {
	StoredSteps int // total number of (source, step, node) entries
	TotalTime   time.Duration
}

// SizeBytes estimates the in-memory index size (each stored step appears in a
// trace and in the inverted index).
func (s Stats) SizeBytes() int64 { return int64(s.StoredSteps) * 2 * 12 }

// BuildIndex samples the walks and builds the inverted indexes.
func BuildIndex(g *graph.Graph, opts Options) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("reads: nil graph")
	}
	opts, err := opts.fill()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	walker, err := walk.NewWalker(g, opts.C, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("reads: %w", err)
	}
	idx := &Index{g: g, opts: opts, sets: make([]walkSet, opts.R)}
	for j := 0; j < opts.R; j++ {
		set := walkSet{
			traces:   make([][]int32, g.N()),
			inverted: make(map[stepKey][]int32),
		}
		for v := 0; v < g.N(); v++ {
			trace, _ := walker.SampleTrace(v)
			depth := len(trace) - 1
			if depth > opts.T {
				depth = opts.T
			}
			steps := make([]int32, depth)
			for s := 1; s <= depth; s++ {
				node := int32(trace[s])
				steps[s-1] = node
				key := stepKey{Step: int32(s), Node: node}
				set.inverted[key] = append(set.inverted[key], int32(v))
				idx.stats.StoredSteps++
			}
			set.traces[v] = steps
		}
		idx.sets[j] = set
	}
	idx.stats.TotalTime = time.Since(start)
	return idx, nil
}

// Graph returns the indexed graph.
func (idx *Index) Graph() *graph.Graph { return idx.g }

// Stats returns preprocessing statistics.
func (idx *Index) Stats() Stats { return idx.stats }

// SingleSource answers a single-source SimRank query from u: for every walk
// set, every node whose stored walk first meets u's stored walk contributes
// 1/R to its estimate.
func (idx *Index) SingleSource(u int) (map[int]float64, error) {
	if err := idx.g.CheckNode(u); err != nil {
		return nil, err
	}
	scores := make(map[int]float64)
	inc := 1 / float64(idx.opts.R)
	for j := range idx.sets {
		set := &idx.sets[j]
		trace := set.traces[u]
		met := make(map[int32]struct{})
		for s := 0; s < len(trace); s++ {
			key := stepKey{Step: int32(s + 1), Node: trace[s]}
			for _, v := range set.inverted[key] {
				if int(v) == u {
					continue
				}
				if _, ok := met[v]; ok {
					continue
				}
				met[v] = struct{}{}
				scores[int(v)] += inc
			}
		}
	}
	scores[u] = 1
	return scores, nil
}
