package gen

import "prsim/internal/walk"

// newRNGForTest keeps the property tests independent of how the production
// code seeds its generators.
func newRNGForTest(seed uint64) *walk.RNG { return walk.NewRNG(seed) }
