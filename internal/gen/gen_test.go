package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerLawBasicProperties(t *testing.T) {
	g, err := PowerLaw(PowerLawOptions{N: 5000, AvgDegree: 10, Gamma: 2.5, Seed: 1})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if g.N() != 5000 {
		t.Errorf("N() = %d, want 5000", g.N())
	}
	avg := g.AverageDegree()
	if avg < 6 || avg > 11 {
		t.Errorf("average degree = %v, want roughly 10 (self-loop and duplicate removal allowed)", avg)
	}
	if !g.OutSortedByInDegree() {
		t.Errorf("generated graph must have sorted out-adjacency")
	}
}

func TestPowerLawExponentControl(t *testing.T) {
	// A smaller gamma must produce a heavier tail (larger maximum degree).
	heavy, err := PowerLaw(PowerLawOptions{N: 20000, AvgDegree: 10, Gamma: 1.5, Seed: 7})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	light, err := PowerLaw(PowerLawOptions{N: 20000, AvgDegree: 10, Gamma: 3.0, Seed: 7})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	if heavy.OutDegreeStats().Max <= light.OutDegreeStats().Max {
		t.Errorf("gamma=1.5 max degree %d should exceed gamma=3.0 max degree %d",
			heavy.OutDegreeStats().Max, light.OutDegreeStats().Max)
	}
	// The fitted exponent should be ordered consistently as well.
	gHeavy, okH := heavy.OutPowerLawExponent()
	gLight, okL := light.OutPowerLawExponent()
	if okH && okL && gHeavy >= gLight {
		t.Errorf("fitted exponents not ordered: gamma=1.5 fit %v, gamma=3.0 fit %v", gHeavy, gLight)
	}
}

func TestPowerLawUndirectedSymmetric(t *testing.T) {
	g, err := PowerLaw(PowerLawOptions{N: 500, AvgDegree: 6, Gamma: 2, Directed: false, Seed: 3})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	bad := 0
	g.Edges(func(u, v int) bool {
		if !g.HasEdge(v, u) {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Errorf("%d edges missing their reverse in an undirected graph", bad)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	a, _ := PowerLaw(PowerLawOptions{N: 300, AvgDegree: 5, Gamma: 2, Seed: 42})
	b, _ := PowerLaw(PowerLawOptions{N: 300, AvgDegree: 5, Gamma: 2, Seed: 42})
	if a.M() != b.M() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.M(), b.M())
	}
	c, _ := PowerLaw(PowerLawOptions{N: 300, AvgDegree: 5, Gamma: 2, Seed: 43})
	if a.M() == c.M() {
		// Not impossible, but combined with identical degree sequences it
		// would be suspicious; just check a weaker difference signal.
		same := true
		for v := 0; v < a.N(); v++ {
			if a.OutDegree(v) != c.OutDegree(v) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical graphs")
		}
	}
}

func TestPowerLawValidation(t *testing.T) {
	if _, err := PowerLaw(PowerLawOptions{N: 0, AvgDegree: 5, Gamma: 2}); err == nil {
		t.Errorf("N=0 should be an error")
	}
	if _, err := PowerLaw(PowerLawOptions{N: 10, AvgDegree: 0, Gamma: 2}); err == nil {
		t.Errorf("zero degree should be an error")
	}
	if _, err := PowerLaw(PowerLawOptions{N: 10, AvgDegree: 5, Gamma: 0}); err == nil {
		t.Errorf("zero gamma should be an error")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(EROptions{N: 2000, AvgDegree: 8, Seed: 11})
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	avg := g.AverageDegree()
	if math.Abs(avg-8) > 1 {
		t.Errorf("average degree = %v, want about 8", avg)
	}
	// ER degree distributions are concentrated: max degree stays near the
	// mean, unlike power-law graphs.
	if g.OutDegreeStats().Max > 40 {
		t.Errorf("ER max out-degree = %d, suspiciously heavy tail", g.OutDegreeStats().Max)
	}
}

func TestErdosRenyiValidation(t *testing.T) {
	if _, err := ErdosRenyi(EROptions{N: 0, AvgDegree: 1}); err == nil {
		t.Errorf("N=0 should be an error")
	}
	if _, err := ErdosRenyi(EROptions{N: 10, AvgDegree: 0}); err == nil {
		t.Errorf("zero degree should be an error")
	}
	if _, err := ErdosRenyi(EROptions{N: 10, AvgDegree: 20}); err == nil {
		t.Errorf("degree above N should be an error")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(BAOptions{N: 3000, M: 3, Seed: 5})
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	if g.N() != 3000 {
		t.Errorf("N() = %d, want 3000", g.N())
	}
	// Preferential attachment produces a heavy tail.
	if g.OutDegreeStats().Max < 30 {
		t.Errorf("BA max degree = %d, expected a heavy tail", g.OutDegreeStats().Max)
	}
	if _, err := BarabasiAlbert(BAOptions{N: 5, M: 0}); err == nil {
		t.Errorf("M=0 should be an error")
	}
	if _, err := BarabasiAlbert(BAOptions{N: 5, M: 10}); err == nil {
		t.Errorf("M >= N should be an error")
	}
}

func TestFixtures(t *testing.T) {
	c := Cycle(7)
	if c.N() != 7 || c.M() != 7 {
		t.Errorf("cycle size wrong: n=%d m=%d", c.N(), c.M())
	}
	s := Star(5)
	if s.OutDegree(0) != 4 || s.InDegree(0) != 0 {
		t.Errorf("star center degrees wrong: out=%d in=%d", s.OutDegree(0), s.InDegree(0))
	}
	k := Complete(4)
	if k.M() != 12 {
		t.Errorf("complete graph edges = %d, want 12", k.M())
	}
}

func TestSampleCumulativeBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newRNGForTest(seed)
		cum := cumulative([]float64{1, 2, 3, 4})
		for i := 0; i < 100; i++ {
			idx := sampleCumulative(cum, rng)
			if idx < 0 || idx >= 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
