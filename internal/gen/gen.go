// Package gen generates the synthetic graphs used by the paper's Section 5.3
// experiments: power-law graphs with a controllable cumulative out-degree
// exponent γ (a Chung-Lu style substitute for the hyperbolic generator used in
// the paper), Erdős–Rényi graphs with a controllable average degree, a
// Barabási–Albert preferential-attachment generator, and small deterministic
// fixtures used throughout the test suites.
package gen

import (
	"fmt"
	"math"
	"sort"

	"prsim/internal/graph"
	"prsim/internal/walk"
)

// PowerLawOptions configures the power-law generator.
type PowerLawOptions struct {
	// N is the number of nodes.
	N int
	// AvgDegree is the target average (out-)degree d̄.
	AvgDegree float64
	// Gamma is the cumulative power-law exponent of the degree distribution:
	// P(deg >= k) ~ k^-Gamma. Values in (1, 3] are typical for real graphs.
	Gamma float64
	// Directed controls whether each generated edge is directed (one arc) or
	// undirected (two arcs). The paper's synthetic experiments use undirected
	// graphs.
	Directed bool
	// Seed makes generation deterministic.
	Seed uint64
}

func (o PowerLawOptions) validate() error {
	if o.N <= 0 {
		return fmt.Errorf("gen: N=%d must be positive", o.N)
	}
	if o.AvgDegree <= 0 {
		return fmt.Errorf("gen: AvgDegree=%v must be positive", o.AvgDegree)
	}
	if o.Gamma <= 0 {
		return fmt.Errorf("gen: Gamma=%v must be positive", o.Gamma)
	}
	return nil
}

// PowerLaw generates a graph whose degree distribution follows a power law
// with cumulative exponent Gamma, using Chung-Lu style weighted endpoint
// sampling: node i (1-based rank) receives weight proportional to
// (N/i)^(1/Gamma), and each edge picks both endpoints independently with
// probability proportional to their weights.
func PowerLaw(opts PowerLawOptions) (*graph.Graph, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := opts.N
	rng := walk.NewRNG(opts.Seed)

	// Node weights w_i ∝ (n/i)^(1/gamma); the normalization cancels in the
	// endpoint sampling.
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = math.Pow(float64(n)/float64(i+1), 1/opts.Gamma)
	}
	// Shuffle ranks so node ids are not correlated with degree.
	perm := rng.Perm(n)
	shuffled := make([]float64, n)
	for i, p := range perm {
		shuffled[p] = weights[i]
	}
	cum := cumulative(shuffled)

	edgesWanted := int(math.Round(opts.AvgDegree * float64(n)))
	if !opts.Directed {
		edgesWanted /= 2
	}
	if edgesWanted < 1 {
		edgesWanted = 1
	}
	b := graph.NewBuilderN(n)
	b.SetAllowSelfLoops(false)
	for e := 0; e < edgesWanted; e++ {
		u := sampleCumulative(cum, rng)
		v := sampleCumulative(cum, rng)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if !opts.Directed {
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}

// EROptions configures the Erdős–Rényi generator (Figure 7).
type EROptions struct {
	// N is the number of nodes.
	N int
	// AvgDegree is the expected out-degree of every node; the generator draws
	// N·AvgDegree directed edges uniformly at random (the G(n, m) model).
	AvgDegree float64
	// Directed controls whether edges are single arcs or arc pairs.
	Directed bool
	// Seed makes generation deterministic.
	Seed uint64
}

// ErdosRenyi generates a uniform random graph with the requested average
// degree.
func ErdosRenyi(opts EROptions) (*graph.Graph, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("gen: N=%d must be positive", opts.N)
	}
	if opts.AvgDegree <= 0 {
		return nil, fmt.Errorf("gen: AvgDegree=%v must be positive", opts.AvgDegree)
	}
	if opts.AvgDegree >= float64(opts.N) {
		return nil, fmt.Errorf("gen: AvgDegree=%v must be below N=%d", opts.AvgDegree, opts.N)
	}
	rng := walk.NewRNG(opts.Seed)
	n := opts.N
	edgesWanted := int(math.Round(opts.AvgDegree * float64(n)))
	if !opts.Directed {
		edgesWanted /= 2
	}
	b := graph.NewBuilderN(n)
	b.SetAllowSelfLoops(false)
	for e := 0; e < edgesWanted; e++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if !opts.Directed {
			b.AddEdge(v, u)
		}
	}
	return b.Build()
}

// BAOptions configures the Barabási–Albert generator.
type BAOptions struct {
	// N is the number of nodes.
	N int
	// M is the number of edges attached from each new node to existing nodes.
	M int
	// Seed makes generation deterministic.
	Seed uint64
}

// BarabasiAlbert generates a preferential-attachment graph. New nodes attach M
// undirected edges to existing nodes chosen proportionally to their current
// degree, producing a power-law degree distribution with cumulative exponent
// close to 2.
func BarabasiAlbert(opts BAOptions) (*graph.Graph, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("gen: N=%d must be positive", opts.N)
	}
	if opts.M <= 0 || opts.M >= opts.N {
		return nil, fmt.Errorf("gen: M=%d must be in (0, N)", opts.M)
	}
	rng := walk.NewRNG(opts.Seed)
	b := graph.NewBuilderN(opts.N)
	b.SetAllowSelfLoops(false)
	// targets holds one entry per edge endpoint, so sampling a uniform entry
	// implements preferential attachment.
	var targets []int
	for v := 0; v < opts.M; v++ {
		targets = append(targets, v)
	}
	for v := opts.M; v < opts.N; v++ {
		chosen := make(map[int]struct{}, opts.M)
		for len(chosen) < opts.M {
			var t int
			if len(targets) == 0 {
				t = rng.Intn(v)
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			b.AddEdge(v, t)
			b.AddEdge(t, v)
			targets = append(targets, v, t)
		}
	}
	return b.Build()
}

// Cycle returns a directed cycle on n nodes (a deterministic fixture).
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{From: i, To: (i + 1) % n}
	}
	g := graph.MustFromEdges(n, edges)
	g.SortOutByInDegree()
	return g
}

// Star returns a star with node 0 at the center pointing at nodes 1..n-1.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: i})
	}
	g := graph.MustFromEdges(n, edges)
	g.SortOutByInDegree()
	return g
}

// Complete returns a complete directed graph (no self-loops) on n nodes.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				edges = append(edges, graph.Edge{From: u, To: v})
			}
		}
	}
	g := graph.MustFromEdges(n, edges)
	g.SortOutByInDegree()
	return g
}

// cumulative returns the cumulative sums of weights.
func cumulative(weights []float64) []float64 {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}
	return cum
}

// sampleCumulative draws an index proportionally to the weights represented by
// the cumulative sums.
func sampleCumulative(cum []float64, rng *walk.RNG) int {
	total := cum[len(cum)-1]
	x := rng.Float64() * total
	return sort.SearchFloat64s(cum, x)
}
