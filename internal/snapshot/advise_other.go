//go:build !linux

package snapshot

// adviseWillNeed is a no-op on platforms without madvise (or where we have
// not wired it up); pages fault in on demand.
func adviseWillNeed(data []byte, off, length uint64) bool { return false }

// adviseHugePage is a no-op off Linux; transparent huge pages are a Linux
// kernel feature.
func adviseHugePage(data []byte, off, length uint64) bool { return false }
