// Package snapshot opens saved PRSim indexes (snapshot v2/v3 files written by
// core.Save) by memory-mapping them and reconstructing the index's slices as
// zero-copy views over the mapping. Self-contained v3 files embed the graph's
// CSR adjacency arrays and label table too, so the *entire* serving state —
// graph and index — comes out of one mapping: cold-starting a server on a
// multi-GB index becomes an O(header + CSR validation) operation instead of an
// O(edge list) parse, the kernel pages data in lazily as queries touch it, and
// multiple server processes mapping the same file share one page cache.
//
// On platforms where zero-copy mapping is unavailable (no mmap syscall,
// 32-bit ints, big-endian byte order) — and for legacy v1 files, which are
// element-streamed and cannot be viewed in place — Open falls back to the
// portable streaming loader transparently; Mapped reports which path was
// taken.
//
// Snapshots are reference counted so they can be hot-swapped under live
// traffic: Close drops the owner reference but defers the munmap until every
// in-flight query that Retain'd the snapshot has Release'd it, fixing the
// use-after-unmap fault a plain Close-while-serving would cause.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"unsafe"

	"prsim/internal/core"
	"prsim/internal/graph"
)

// ErrClosed is returned by operations on a snapshot after Close. A dead
// handle must fail loudly: before this sentinel existed, Index and Verify
// returned nil after Close, handing callers a nil index and a "verified OK"
// from an unmapped file.
var ErrClosed = errors.New("snapshot: closed")

// Options configures Open.
type Options struct {
	// VerifyChecksum validates the CRC-32C trailer over the whole section
	// payload at open time. Validation faults in every page of the file once
	// (sequentially, at memory-bandwidth speed), so it trades the O(header)
	// open for end-to-end integrity; it can also be run at any later point
	// with Snapshot.Verify. The structural invariants that queries rely on
	// for memory safety (section table bounds, offset-array monotonicity,
	// CSR adjacency bounds) are always validated regardless of this option.
	VerifyChecksum bool
	// ForceStream disables mmap and always uses the portable streaming
	// loader. Useful for benchmarking the two paths against each other and
	// for tests.
	ForceStream bool
}

// numSections is the number of snapshot sections, taken from the layout's
// array type so it cannot drift from the format definition.
const numSections = len((core.SnapshotLayout{}).Sections)

// sectionView locates one section's bytes: for plain opens every view points
// into the one mapped file, for delta opens each view points into whichever
// of the base and delta mappings actually holds that section.
type sectionView struct {
	data []byte
	sec  core.Section
}

// Snapshot is an open index snapshot. When Mapped reports true, the index's
// (and, for self-contained v3+ files, the graph's) section slices alias the
// underlying mmap region(s) and stay valid until the last reference is
// released.
type Snapshot struct {
	idx         *core.Index
	g           *graph.Graph
	data        []byte // the mmap region; nil when the streaming fallback was used
	delta       []byte // second mmap region for delta-backed opens; nil otherwise
	layout      *core.SnapshotLayout
	baseLayout  *core.SnapshotLayout // delta-backed opens: the base file's layout
	deltaLayout *core.DeltaLayout    // delta-backed opens: the delta file's layout
	views       [numSections]sectionView
	mapped      bool
	graphMapped bool // graph adjacency aliases the mapping (v3+ zero-copy open)

	// refs counts the owner (1 at open) plus every in-flight Retain. The
	// munmap runs when the count reaches zero, so closing under live queries
	// defers the unmap until they drain. closed flips once, making Close
	// idempotent and failing Retain/Index/Verify afterwards.
	refs   atomic.Int64
	closed atomic.Bool

	// advices records which madvise hints the last WarmUp applied (e.g.
	// "willneed", "hugepage"), for surfacing in serving stats. Stored as a
	// pointer because WarmUp (open, hot swap, manual re-warm) can race with
	// stats readers.
	advices atomic.Pointer[[]string]
}

// entryLayoutOK reports whether Go laid out core.IndexEntry exactly like the
// on-disk 16-byte record (int32 at 0, float64 at 8), which is what lets the
// entry slab be viewed as a []core.IndexEntry without copying.
var entryLayoutOK = unsafe.Sizeof(core.IndexEntry{}) == 16 &&
	unsafe.Offsetof(core.IndexEntry{}.Node) == 0 &&
	unsafe.Offsetof(core.IndexEntry{}.Reserve) == 8

func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Supported reports whether this platform can open snapshots zero-copy. When
// false, Open still works via the streaming fallback.
func Supported() bool {
	return mmapAvailable && strconv.IntSize == 64 && hostLittleEndian() && entryLayoutOK
}

// Open opens a saved index. g may be nil for self-contained v3 snapshots, in
// which case the embedded graph is reconstructed (zero-copy when mapped);
// when g is supplied it becomes the graph queries run on, and for v3 files
// the embedded graph's shape is cross-checked against it. v1/v2 files do not
// embed a graph and require g.
//
// Open memory-maps v2/v3 snapshots when the platform supports it and falls
// back to the streaming loader otherwise (and for v1 files).
func Open(path string, g *graph.Graph, opts Options) (*Snapshot, error) {
	if opts.ForceStream || !Supported() {
		return openStream(path, g)
	}
	data, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mapping %s: %w", path, err)
	}
	if v, err := core.SnapshotFileVersion(data); err == nil && v == 1 {
		// Legacy v1 file: element-streamed, no flat sections to view.
		munmapFile(data)
		return openStream(path, g)
	}
	snap, err := openMapped(data, g, opts)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return snap, nil
}

// OpenDelta opens the successor snapshot described by a delta file layered
// over its base snapshot, without materializing the spliced file: both files
// are memory-mapped and each section is viewed from whichever file holds its
// current bytes. The base must be the v4 snapshot the delta was written
// against (same lineage, matching generation); the delta's unshipped
// sections are served straight from the base mapping, so the combined open
// faults in only the delta's changed sections beyond what the base mapping
// already shares with other users of the same file.
//
// On platforms without zero-copy support (and with Options.ForceStream) the
// two files are read, spliced into the full successor image in memory, and
// parsed by the portable streaming loader.
func OpenDelta(basePath, deltaPath string, opts Options) (*Snapshot, error) {
	if opts.ForceStream || !Supported() {
		return openStreamDelta(basePath, deltaPath)
	}
	base, err := mmapFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mapping %s: %w", basePath, err)
	}
	delta, err := mmapFile(deltaPath)
	if err != nil {
		munmapFile(base)
		return nil, fmt.Errorf("snapshot: mapping %s: %w", deltaPath, err)
	}
	snap, err := openMappedDelta(base, delta, opts)
	if err != nil {
		munmapFile(delta)
		munmapFile(base)
		return nil, err
	}
	return snap, nil
}

// openMappedDelta validates the two mapped files against each other and
// assembles the zero-copy successor state.
func openMappedDelta(base, delta []byte, opts Options) (*Snapshot, error) {
	bl, err := core.ParseSnapshotLayout(base)
	if err != nil {
		return nil, fmt.Errorf("snapshot: base: %w", err)
	}
	d, err := core.ParseDeltaLayout(delta)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if err := d.CheckBase(bl); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if opts.VerifyChecksum {
		if err := bl.VerifyChecksum(base); err != nil {
			return nil, fmt.Errorf("snapshot: base: %w", err)
		}
		if err := d.VerifyChecksum(delta); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	layout := d.Layout
	var views [numSections]sectionView
	for i := range views {
		if d.Ships(i) {
			views[i] = sectionView{data: delta, sec: d.Shipped[i]}
		} else {
			views[i] = sectionView{data: base, sec: bl.Sections[i]}
		}
	}
	s, err := assembleMapped(layout, views, nil)
	if err != nil {
		return nil, err
	}
	s.data, s.delta, s.baseLayout, s.deltaLayout = base, delta, bl, d
	return s, nil
}

// openStreamDelta is the portable fallback for delta opens: splice the full
// successor image in memory and run the streaming loader over it.
func openStreamDelta(basePath, deltaPath string) (*Snapshot, error) {
	base, err := os.ReadFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	delta, err := os.ReadFile(deltaPath)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	full, err := core.SpliceDelta(base, delta)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	g, idx, err := core.LoadSelfContained(bytes.NewReader(full))
	if err != nil {
		return nil, err
	}
	s := &Snapshot{idx: idx, g: g}
	s.refs.Store(1)
	return s, nil
}

// openMapped validates the mapped bytes and assembles the zero-copy graph
// and index.
func openMapped(data []byte, g *graph.Graph, opts Options) (*Snapshot, error) {
	layout, err := core.ParseSnapshotLayout(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if opts.VerifyChecksum {
		if err := layout.VerifyChecksum(data); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	var views [numSections]sectionView
	for i := range views {
		views[i] = sectionView{data: data, sec: layout.Sections[i]}
	}
	s, err := assembleMapped(layout, views, g)
	if err != nil {
		return nil, err
	}
	s.data = data
	return s, nil
}

// assembleMapped builds the zero-copy graph and index from per-section byte
// views (one file for plain opens, two for delta-backed opens). The caller
// fills in the mapping fields it owns.
func assembleMapped(layout *core.SnapshotLayout, views [numSections]sectionView, g *graph.Graph) (*Snapshot, error) {
	graphMapped := false
	if g == nil {
		if !layout.HasGraph() {
			return nil, fmt.Errorf("snapshot: v%d files do not embed the graph; supply one", layout.Version)
		}
		eg, err := graphFromSections(views, layout)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		g, graphMapped = eg, true
	} else if layout.HasGraph() {
		if uint64(g.N()) != layout.NNodes || uint64(g.M()) != layout.NumEdges {
			return nil, fmt.Errorf("snapshot: embedded graph is %d nodes / %d edges but supplied graph is %d / %d",
				layout.NNodes, layout.NumEdges, g.N(), g.M())
		}
	}
	idx, err := core.NewIndexFromSnapshot(g, layout,
		viewSlice[float64](views[0]),
		viewSlice[int](views[1]),
		viewSlice[uint64](views[2]),
		viewSlice[uint64](views[3]),
		viewSlice[core.IndexEntry](views[4]),
	)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	s := &Snapshot{idx: idx, g: g, layout: layout, views: views, mapped: true, graphMapped: graphMapped}
	s.refs.Store(1)
	return s, nil
}

// graphFromSections assembles the embedded graph of a v3+ snapshot: the CSR
// offset and adjacency arrays are zero-copy views over the mapping(s), while
// the label table (when present) is materialized onto the heap so labels
// survive the mapping being closed (label strings escape into query
// responses, where no reference count protects them).
func graphFromSections(views [numSections]sectionView, l *core.SnapshotLayout) (*graph.Graph, error) {
	if !l.OutSorted {
		// Sorting writes the adjacency in place, which a read-only mapping
		// forbids; Save always sorts before writing, so this only trips on
		// hand-crafted files.
		return nil, fmt.Errorf("embedded graph is not sorted by head in-degree")
	}
	g, err := graph.FromCSR(
		viewSlice[int](views[5]),
		viewSlice[int32](views[6]),
		viewSlice[int](views[7]),
		viewSlice[int32](views[8]),
		true,
	)
	if err != nil {
		return nil, err
	}
	if l.HasLabels {
		labels, err := core.LabelsFromSections(
			viewSlice[uint64](views[9]),
			viewSlice[byte](views[10]),
		)
		if err != nil {
			return nil, err
		}
		if err := g.SetLabels(labels); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// viewSlice reinterprets one aligned section view as a []T. The section
// table guarantees 8-byte alignment and in-bounds extents, and Supported
// gates the T layouts (4-byte int32, 8-byte int/uint64/float64, 16-byte
// IndexEntry) this relies on.
func viewSlice[T any](v sectionView) []T {
	if v.sec.Len == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*T)(unsafe.Pointer(&v.data[v.sec.Off])), v.sec.Len/uint64(unsafe.Sizeof(t)))
}

// openStream is the portable fallback: parse the file with the streaming
// loader into heap-allocated slices, reconstructing the graph too when the
// caller did not supply one (self-contained v3 files only).
func openStream(path string, g *graph.Graph) (*Snapshot, error) {
	var idx *core.Index
	var err error
	if g == nil {
		g, idx, err = core.LoadSelfContainedFile(path)
	} else {
		idx, err = core.LoadIndexFile(path, g)
	}
	if err != nil {
		return nil, err
	}
	s := &Snapshot{idx: idx, g: g}
	s.refs.Store(1)
	return s, nil
}

// Index returns the loaded index, or ErrClosed after Close. When Mapped
// reports true the index aliases the mapping and must not be used after the
// snapshot's last reference is released.
func (s *Snapshot) Index() (*core.Index, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.idx, nil
}

// Graph returns the graph the index queries run on: the embedded graph for
// self-contained opens, or the caller-supplied one. ErrClosed after Close.
func (s *Snapshot) Graph() (*graph.Graph, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	return s.g, nil
}

// Mapped reports whether the index is backed by an mmap region (true) or by
// heap slices from the streaming fallback (false).
func (s *Snapshot) Mapped() bool { return s.mapped }

// GraphMapped reports whether the graph's adjacency arrays alias the mmap
// region (self-contained zero-copy open) rather than heap memory.
func (s *Snapshot) GraphMapped() bool { return s.graphMapped }

// Retain takes a reference on the snapshot, keeping the mapping alive until
// the matching Release even if Close runs in between. It returns false once
// the snapshot has been closed; callers must not use the index in that case.
func (s *Snapshot) Retain() bool {
	for {
		r := s.refs.Load()
		if r <= 0 || s.closed.Load() {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			// Close may have flipped closed between the load and the CAS; the
			// reference is still counted, so the unmap waits for our Release
			// either way. Refuse the handle so no new work starts post-Close.
			if s.closed.Load() {
				s.Release()
				return false
			}
			return true
		}
	}
}

// Release drops a reference taken with Retain. The final release (owner or
// query, whichever drops last) performs the munmap; an unmap error at that
// point is dropped, since the releasing goroutine is usually a draining
// query with nobody to report to (Close returns it when Close itself is the
// final release).
func (s *Snapshot) Release() { _ = s.release() }

// release drops one reference and unmaps on the last one. Exactly one caller
// observes the zero crossing, so the munmap (and the reads of s.data/s.delta,
// written only at construction) is single-threaded by construction. For
// delta-backed snapshots both mappings are released.
func (s *Snapshot) release() error {
	if s.refs.Add(-1) != 0 {
		return nil
	}
	var err error
	if s.delta != nil {
		if e := munmapFile(s.delta); e != nil {
			err = fmt.Errorf("snapshot: unmapping delta: %w", e)
		}
	}
	if s.data != nil {
		if e := munmapFile(s.data); e != nil && err == nil {
			err = fmt.Errorf("snapshot: unmapping: %w", e)
		}
	}
	return err
}

// WarmUp hints the kernel to fault in the sections queries touch first — the
// index entry slab and, for self-contained snapshots, the graph's adjacency
// arrays — via madvise(MADV_WILLNEED) (a no-op off Linux and for
// streaming-backed snapshots). Serving paths call it right after open and
// after a hot swap so the first post-(re)load queries do not eat the
// page-fault cliff one miss at a time; the readahead proceeds asynchronously
// while the caller starts serving.
// WarmUp also asks for transparent-huge-page backing on the entry slab when
// it is large enough to span full 2 MiB regions (madvise(MADV_HUGEPAGE)):
// reserve-list reads are random accesses across the slab, and huge pages cut
// their TLB miss rate ~500×. Advices reports which hints actually applied.
func (s *Snapshot) WarmUp() {
	if !s.mapped || !s.Retain() {
		return
	}
	defer s.Release()
	applied := make([]string, 0, 2)
	willNeed := false
	for _, i := range s.layout.HotSectionIndices() {
		if v := s.views[i]; adviseWillNeed(v.data, v.sec.Off, v.sec.Len) {
			willNeed = true
		}
	}
	if willNeed {
		applied = append(applied, "willneed")
	}
	if slab := s.views[s.layout.EntrySlabIndex()]; adviseHugePage(slab.data, slab.sec.Off, slab.sec.Len) {
		applied = append(applied, "hugepage")
	}
	s.advices.Store(&applied)
}

// Advices reports which madvise hints the most recent WarmUp applied, in a
// fixed order: "willneed" (page-cache readahead on the hot sections) and
// "hugepage" (transparent-huge-page backing on the entry slab, issued only
// when the slab spans at least one aligned 2 MiB region). Empty before the
// first WarmUp, for streaming-backed snapshots, and off Linux. The returned
// slice is read-only.
func (s *Snapshot) Advices() []string {
	if p := s.advices.Load(); p != nil {
		return *p
	}
	return nil
}

// Verify recomputes the CRC-32C of the mapped section payload against the
// file's trailer, faulting in every page. It returns ErrClosed after Close
// and nil for streaming-backed snapshots (the streaming loader checksums
// everything as it parses).
func (s *Snapshot) Verify() error {
	if !s.mapped {
		if s.closed.Load() {
			return ErrClosed
		}
		return nil
	}
	if !s.Retain() {
		return ErrClosed
	}
	defer s.Release()
	if s.deltaLayout != nil {
		// Delta-backed: the serving state spans two files, each carrying its
		// own trailer; verify both.
		if err := s.baseLayout.VerifyChecksum(s.data); err != nil {
			return fmt.Errorf("snapshot: base: %w", err)
		}
		if err := s.deltaLayout.VerifyChecksum(s.delta); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		return nil
	}
	if err := s.layout.VerifyChecksum(s.data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// SizeBytes returns the total size of the mapped file(s) — base plus delta
// for delta-backed opens — or 0 for a streaming-backed snapshot.
func (s *Snapshot) SizeBytes() int64 { return int64(len(s.data) + len(s.delta)) }

// Close drops the owner reference. The mapping is unmapped once every
// outstanding Retain has been Release'd — immediately when none are — so the
// index (and every result slice aliasing it) must not be used by new work
// afterwards, while queries that retained the snapshot drain safely. Close is
// idempotent for both mapped and streaming-backed snapshots; repeated calls
// return nil.
func (s *Snapshot) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.release()
}

// statSize returns the file's size, shared by the mmap implementations.
func statSize(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
