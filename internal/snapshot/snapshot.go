// Package snapshot opens saved PRSim indexes (snapshot v2 files written by
// core.Save) by memory-mapping them and reconstructing the index's slices as
// zero-copy views over the mapping. Cold-starting a server on a multi-GB
// index becomes an O(header) operation instead of an O(index) parse, the
// kernel pages index data in lazily as queries touch it, and multiple server
// processes mapping the same file share one page cache.
//
// On platforms where zero-copy mapping is unavailable (no mmap syscall,
// 32-bit ints, big-endian byte order) — and for legacy v1 files, which are
// element-streamed and cannot be viewed in place — Open falls back to the
// portable streaming loader transparently; Mapped reports which path was
// taken.
package snapshot

import (
	"fmt"
	"os"
	"strconv"
	"unsafe"

	"prsim/internal/core"
	"prsim/internal/graph"
)

// Options configures Open.
type Options struct {
	// VerifyChecksum validates the CRC-32C trailer over the whole section
	// payload at open time. Validation faults in every page of the file once
	// (sequentially, at memory-bandwidth speed), so it trades the O(header)
	// open for end-to-end integrity; it can also be run at any later point
	// with Snapshot.Verify. The structural invariants that queries rely on
	// for memory safety (section table bounds, offset-array monotonicity)
	// are always validated regardless of this option.
	VerifyChecksum bool
	// ForceStream disables mmap and always uses the portable streaming
	// loader. Useful for benchmarking the two paths against each other and
	// for tests.
	ForceStream bool
}

// Snapshot is an open index snapshot. When Mapped reports true, the index's
// section slices alias the underlying mmap region and stay valid until Close.
type Snapshot struct {
	idx    *core.Index
	data   []byte // the mmap region; nil when the streaming fallback was used
	layout *core.SnapshotLayout
	mapped bool
}

// entryLayoutOK reports whether Go laid out core.IndexEntry exactly like the
// on-disk 16-byte record (int32 at 0, float64 at 8), which is what lets the
// entry slab be viewed as a []core.IndexEntry without copying.
var entryLayoutOK = unsafe.Sizeof(core.IndexEntry{}) == 16 &&
	unsafe.Offsetof(core.IndexEntry{}.Node) == 0 &&
	unsafe.Offsetof(core.IndexEntry{}.Reserve) == 8

func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Supported reports whether this platform can open snapshots zero-copy. When
// false, Open still works via the streaming fallback.
func Supported() bool {
	return mmapAvailable && strconv.IntSize == 64 && hostLittleEndian() && entryLayoutOK
}

// Open opens a saved index against its graph. It memory-maps v2 snapshots
// when the platform supports it and falls back to the streaming loader
// otherwise (and for v1 files). The graph must be the same graph the index
// was built from.
func Open(path string, g *graph.Graph, opts Options) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("snapshot: nil graph")
	}
	if opts.ForceStream || !Supported() {
		return openStream(path, g)
	}
	data, err := mmapFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mapping %s: %w", path, err)
	}
	if v, err := core.SnapshotFileVersion(data); err == nil && v == 1 {
		// Legacy v1 file: element-streamed, no flat sections to view.
		munmapFile(data)
		return openStream(path, g)
	}
	snap, err := openMapped(data, g, opts)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return snap, nil
}

// openMapped validates the mapped bytes and assembles the zero-copy index.
func openMapped(data []byte, g *graph.Graph, opts Options) (*Snapshot, error) {
	layout, err := core.ParseSnapshotLayout(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if opts.VerifyChecksum {
		if err := layout.VerifyChecksum(data); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	idx, err := core.NewIndexFromSnapshot(g, layout,
		viewSlice[float64](data, layout.Sections[0]),
		viewSlice[int](data, layout.Sections[1]),
		viewSlice[uint64](data, layout.Sections[2]),
		viewSlice[uint64](data, layout.Sections[3]),
		viewSlice[core.IndexEntry](data, layout.Sections[4]),
	)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Snapshot{idx: idx, data: data, layout: layout, mapped: true}, nil
}

// viewSlice reinterprets one aligned section of the mapping as a []T. The
// section table guarantees 8-byte alignment and in-bounds extents, and
// Supported gates the T layouts (8-byte int/uint64/float64, 16-byte
// IndexEntry) this relies on.
func viewSlice[T any](data []byte, s core.Section) []T {
	if s.Len == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*T)(unsafe.Pointer(&data[s.Off])), s.Len/uint64(unsafe.Sizeof(t)))
}

// openStream is the portable fallback: parse the file with the streaming
// loader into heap-allocated slices.
func openStream(path string, g *graph.Graph) (*Snapshot, error) {
	idx, err := core.LoadIndexFile(path, g)
	if err != nil {
		return nil, err
	}
	return &Snapshot{idx: idx}, nil
}

// Index returns the loaded index. When Mapped reports true it must not be
// used after Close.
func (s *Snapshot) Index() *core.Index { return s.idx }

// Mapped reports whether the index is backed by an mmap region (true) or by
// heap slices from the streaming fallback (false).
func (s *Snapshot) Mapped() bool { return s.mapped }

// Verify recomputes the CRC-32C of the mapped section payload against the
// file's trailer, faulting in every page. It is a no-op for streaming-backed
// snapshots (the streaming loader checksums everything as it parses) and for
// closed snapshots.
func (s *Snapshot) Verify() error {
	if !s.mapped || s.data == nil {
		return nil
	}
	if err := s.layout.VerifyChecksum(s.data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// SizeBytes returns the size of the mapped file, or 0 for a streaming-backed
// snapshot.
func (s *Snapshot) SizeBytes() int64 { return int64(len(s.data)) }

// Close unmaps the snapshot. The index (and every result slice obtained from
// it) must not be used afterwards; accessing an unmapped region faults.
// Close is a no-op for streaming-backed snapshots and on repeated calls.
func (s *Snapshot) Close() error {
	if !s.mapped || s.data == nil {
		s.idx = nil
		return nil
	}
	data := s.data
	s.data = nil
	s.idx = nil
	s.mapped = false
	if err := munmapFile(data); err != nil {
		return fmt.Errorf("snapshot: unmapping: %w", err)
	}
	return nil
}

// statSize returns the file's size, shared by the mmap implementations.
func statSize(f *os.File) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
