//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// hugePageBytes is the transparent-huge-page granularity on every Linux
// architecture we map snapshots on (x86-64, arm64 with 4K base pages).
const hugePageBytes = 2 << 20

// adviseWillNeed hints the kernel to start reading the pages covering
// data[off:off+length] into the page cache (madvise(MADV_WILLNEED)). data
// must be the full mmap region (page-aligned by construction); off/length
// are rounded out to page boundaries because madvise requires a page-aligned
// address. The returned bool reports whether the kernel accepted the hint;
// errors are otherwise ignored — the hint is purely an optimization and the
// pages fault in on demand regardless.
func adviseWillNeed(data []byte, off, length uint64) bool {
	if length == 0 || off >= uint64(len(data)) {
		return false
	}
	page := uint64(os.Getpagesize())
	start := off - off%page
	end := off + length
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	return syscall.Madvise(data[start:end], syscall.MADV_WILLNEED) == nil
}

// adviseHugePage asks the kernel to back data[off:off+length] with
// transparent huge pages (madvise(MADV_HUGEPAGE)). One 2 MiB TLB entry then
// covers what would take 512 base-page entries, which matters for the entry
// slab's random-access reserve-list reads on multi-GB indexes. The advice
// only helps for ranges spanning at least one aligned 2 MiB region, so
// shorter ones are skipped; like adviseWillNeed the range is rounded out to
// base-page boundaries (khugepaged collapses only the aligned 2 MiB spans
// within it). Returns whether the hint was issued and accepted — it fails
// EINVAL on kernels built without CONFIG_TRANSPARENT_HUGEPAGE, and is a
// no-op (success, no collapse) when THP is set to "never" in sysfs.
func adviseHugePage(data []byte, off, length uint64) bool {
	if length == 0 || off >= uint64(len(data)) {
		return false
	}
	page := uint64(os.Getpagesize())
	start := off - off%page
	end := off + length
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	// Skip ranges that cannot contain a full aligned huge page.
	firstHuge := (start + hugePageBytes - 1) &^ (hugePageBytes - 1)
	if firstHuge+hugePageBytes > end {
		return false
	}
	return syscall.Madvise(data[start:end], syscall.MADV_HUGEPAGE) == nil
}
