//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// adviseWillNeed hints the kernel to start reading the pages covering
// data[off:off+length] into the page cache (madvise(MADV_WILLNEED)). data
// must be the full mmap region (page-aligned by construction); off/length
// are rounded out to page boundaries because madvise requires a page-aligned
// address. Errors are ignored: the hint is purely an optimization and the
// pages fault in on demand regardless.
func adviseWillNeed(data []byte, off, length uint64) {
	if length == 0 || off >= uint64(len(data)) {
		return
	}
	page := uint64(os.Getpagesize())
	start := off - off%page
	end := off + length
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	_ = syscall.Madvise(data[start:end], syscall.MADV_WILLNEED)
}
