//go:build !unix

package snapshot

import "errors"

// mmapAvailable is false on platforms without a usable mmap, making Open
// fall back to the portable streaming loader.
const mmapAvailable = false

func mmapFile(path string) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(data []byte) error { return nil }
