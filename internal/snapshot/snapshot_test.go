package snapshot

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"prsim/internal/core"
	"prsim/internal/gen"
	"prsim/internal/graph"
)

func buildFixture(t *testing.T) (*graph.Graph, *core.Index, string) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 400, AvgDegree: 6, Gamma: 2.5, Directed: true, Seed: 7})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.2, Seed: 3})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "index.prsim")
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	return g, idx, path
}

// mustIndex unwraps Snapshot.Index in tests that know the snapshot is open.
func mustIndex(t *testing.T, s *Snapshot) *core.Index {
	t.Helper()
	idx, err := s.Index()
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	return idx
}

func TestOpenMapped(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, built, path := buildFixture(t)
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	if !snap.Mapped() {
		t.Fatalf("Open on a supported platform should mmap")
	}
	if snap.GraphMapped() {
		t.Errorf("caller-supplied graph must not report as mapped")
	}
	if snap.SizeBytes() == 0 {
		t.Errorf("mapped snapshot reports zero size")
	}
	idx := mustIndex(t, snap)
	if idx.NumHubs() != built.NumHubs() {
		t.Errorf("hub count: mapped %d, built %d", idx.NumHubs(), built.NumHubs())
	}
	if idx.SizeEntries() != built.SizeEntries() {
		t.Errorf("entries: mapped %d, built %d", idx.SizeEntries(), built.SizeEntries())
	}
}

// TestOpenSelfContained is the headline v3 capability: no graph supplied, the
// embedded CSR structure is reconstructed from the same mapping, and queries
// are bit-identical to an index over the original in-memory graph.
func TestOpenSelfContained(t *testing.T) {
	g, built, path := buildFixture(t)
	snap, err := Open(path, nil, Options{})
	if err != nil {
		t.Fatalf("Open (self-contained): %v", err)
	}
	defer snap.Close()
	sg, err := snap.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if sg.N() != g.N() || sg.M() != g.M() {
		t.Fatalf("embedded graph is %d/%d, want %d/%d", sg.N(), sg.M(), g.N(), g.M())
	}
	if !sg.OutSortedByInDegree() {
		t.Errorf("embedded graph must come back sorted by head in-degree")
	}
	if Supported() {
		if !snap.Mapped() || !snap.GraphMapped() {
			t.Errorf("self-contained open should map graph and index (mapped=%v graphMapped=%v)",
				snap.Mapped(), snap.GraphMapped())
		}
	}
	// The embedded adjacency must match the original exactly (Save sorts
	// before writing, and the fixture graph is already sorted).
	for v := 0; v < g.N(); v += 37 {
		a, b := g.OutNeighbors(v), sg.OutNeighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d: out-degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d out-neighbor %d: %d vs %d", v, i, a[i], b[i])
			}
		}
	}
	idx := mustIndex(t, snap)
	if idx.NumHubs() != built.NumHubs() {
		t.Errorf("hub count: self-contained %d, built %d", idx.NumHubs(), built.NumHubs())
	}
	for _, u := range []int{0, 57, 399} {
		want, err := built.Query(u)
		if err != nil {
			t.Fatalf("built query %d: %v", u, err)
		}
		got, err := idx.Query(u)
		if err != nil {
			t.Fatalf("self-contained query %d: %v", u, err)
		}
		if len(want.Scores) != len(got.Scores) {
			t.Fatalf("query %d: support %d vs %d", u, len(want.Scores), len(got.Scores))
		}
		for v, s := range want.Scores {
			if gs, ok := got.Scores[v]; !ok || math.Float64bits(gs) != math.Float64bits(s) {
				t.Fatalf("query %d node %d: %v vs %v", u, v, s, gs)
			}
		}
	}
}

// TestOpenSelfContainedLabels round-trips the label table through a v3 file,
// on both the mmap and streaming paths.
func TestOpenSelfContainedLabels(t *testing.T) {
	b := graph.NewBuilder()
	b.AddEdgeLabels("alice", "bob")
	b.AddEdgeLabels("bob", "carol")
	b.AddEdgeLabels("carol", "alice")
	b.AddEdgeLabels("dave", "alice")
	g := b.MustBuild()
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.3, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "labelled.prsim")
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	for _, opts := range []Options{{}, {ForceStream: true}} {
		snap, err := Open(path, nil, opts)
		if err != nil {
			t.Fatalf("Open (ForceStream=%v): %v", opts.ForceStream, err)
		}
		sg, err := snap.Graph()
		if err != nil {
			t.Fatalf("Graph: %v", err)
		}
		labels := sg.Labels()
		want := []string{"alice", "bob", "carol", "dave"}
		if len(labels) != len(want) {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
		for i := range want {
			if labels[i] != want[i] {
				t.Errorf("label %d = %q, want %q", i, labels[i], want[i])
			}
		}
		// Labels must survive Close: they are materialized on the heap, not
		// views over the mapping.
		if err := snap.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if labels[0] != "alice" {
			t.Errorf("label after Close = %q, want alice", labels[0])
		}
	}
}

// TestOpenV2RequiresGraph pins the compatibility contract: v2 files load with
// a supplied graph and fail with a clear error without one.
func TestOpenV2RequiresGraph(t *testing.T) {
	g, built, _ := buildFixture(t)
	v2Path := filepath.Join(t.TempDir(), "index.v2.prsim")
	f, err := os.Create(v2Path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := built.SaveV2(f); err != nil {
		t.Fatalf("SaveV2: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, opts := range []Options{{}, {ForceStream: true}} {
		snap, err := Open(v2Path, g, opts)
		if err != nil {
			t.Fatalf("Open v2 with graph (ForceStream=%v): %v", opts.ForceStream, err)
		}
		idx := mustIndex(t, snap)
		if idx.NumHubs() != built.NumHubs() {
			t.Errorf("v2 hub count %d, want %d", idx.NumHubs(), built.NumHubs())
		}
		if _, err := idx.Query(1); err != nil {
			t.Errorf("v2 query: %v", err)
		}
		snap.Close()

		if _, err := Open(v2Path, nil, opts); err == nil {
			t.Errorf("v2 without graph should fail (ForceStream=%v)", opts.ForceStream)
		}
	}
}

// TestMappedQueryParity is the core zero-copy guarantee: for a fixed seed,
// queries answered off the mmap backing are bit-identical to queries answered
// off the streaming loader's heap backing.
func TestMappedQueryParity(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, _, path := buildFixture(t)

	streamed, err := Open(path, g, Options{ForceStream: true})
	if err != nil {
		t.Fatalf("Open (stream): %v", err)
	}
	if streamed.Mapped() {
		t.Fatalf("ForceStream still mapped")
	}
	mapped, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open (mmap): %v", err)
	}
	defer mapped.Close()

	for _, u := range []int{0, 1, 57, 399} {
		a, err := mustIndex(t, streamed).Query(u)
		if err != nil {
			t.Fatalf("stream query %d: %v", u, err)
		}
		b, err := mustIndex(t, mapped).Query(u)
		if err != nil {
			t.Fatalf("mapped query %d: %v", u, err)
		}
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("query %d: score support differs: %d vs %d", u, len(a.Scores), len(b.Scores))
		}
		for v, s := range a.Scores {
			if bs, ok := b.Scores[v]; !ok || math.Float64bits(bs) != math.Float64bits(s) {
				t.Fatalf("query %d node %d: stream %v (%#x) vs mapped %v (%#x)",
					u, v, s, math.Float64bits(s), bs, math.Float64bits(bs))
			}
		}
	}
}

func TestOpenChecksumMismatch(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, _, path := buildFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip one byte in the middle of the section payload.
	data[len(data)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "corrupt.prsim")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(bad, g, Options{VerifyChecksum: true}); err == nil {
		t.Fatalf("corrupted payload should fail checksum validation")
	}
	// The default open skips the payload CRC for O(header) start; structural
	// checks may still catch the flip (it can land in an offset array). It
	// must never panic, and an explicit Verify must flag the corruption.
	if snap, err := Open(bad, g, Options{}); err == nil {
		if verr := snap.Verify(); snap.Mapped() && verr == nil {
			t.Errorf("Verify accepted a corrupted payload")
		}
		snap.Close()
	}
	// The streaming loader always checksums v2/v3 payloads as it parses.
	if _, err := Open(bad, g, Options{ForceStream: true}); err == nil {
		t.Fatalf("streaming load of corrupted payload should fail")
	}
}

func TestOpenTruncated(t *testing.T) {
	g, _, path := buildFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for _, keep := range []int{0, 8, 100, len(data) / 2, len(data) - 1} {
		bad := filepath.Join(t.TempDir(), "trunc.prsim")
		if err := os.WriteFile(bad, data[:keep], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if _, err := Open(bad, g, Options{}); err == nil {
			t.Errorf("truncation to %d bytes should fail", keep)
		}
		if _, err := Open(bad, nil, Options{}); err == nil {
			t.Errorf("self-contained truncation to %d bytes should fail", keep)
		}
	}
}

func TestOpenMissingFile(t *testing.T) {
	g, _, _ := buildFixture(t)
	if _, err := Open(filepath.Join(t.TempDir(), "missing.prsim"), g, Options{}); err == nil {
		t.Fatalf("missing file should fail")
	}
}

func TestOpenForceStreamParityWithLoadIndex(t *testing.T) {
	g, built, path := buildFixture(t)
	snap, err := Open(path, g, Options{ForceStream: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if snap.Mapped() {
		t.Fatalf("ForceStream must not map")
	}
	if mustIndex(t, snap).NumHubs() != built.NumHubs() {
		t.Errorf("hub count mismatch via streaming fallback")
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("Close (stream): %v", err)
	}
}

// TestOpenIndexFree round-trips an index with zero hubs (index-free mode):
// its hubOrder and entrySlab sections are zero-length, exercising the nil
// view edge of the zero-copy path.
func TestOpenIndexFree(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 200, AvgDegree: 5, Gamma: 2.5, Directed: true, Seed: 9})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.3, NumHubs: 0, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "indexfree.prsim")
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	if mustIndex(t, snap).NumHubs() != 0 {
		t.Errorf("index-free snapshot has %d hubs", mustIndex(t, snap).NumHubs())
	}
	if _, err := mustIndex(t, snap).Query(0); err != nil {
		t.Errorf("query on index-free snapshot: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	g, _, path := buildFixture(t)
	for _, opts := range []Options{{}, {ForceStream: true}} {
		snap, err := Open(path, g, opts)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := snap.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := snap.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestClosedHandleFailsLoudly pins the ErrClosed contract: a closed snapshot
// must refuse to hand out its index, its graph, or a "verified OK" — on the
// mapped path and the streaming path alike.
func TestClosedHandleFailsLoudly(t *testing.T) {
	g, _, path := buildFixture(t)
	for _, opts := range []Options{{}, {ForceStream: true}} {
		snap, err := Open(path, g, opts)
		if err != nil {
			t.Fatalf("Open (ForceStream=%v): %v", opts.ForceStream, err)
		}
		if err := snap.Verify(); err != nil {
			t.Fatalf("Verify while open: %v", err)
		}
		if err := snap.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if _, err := snap.Index(); !errors.Is(err, ErrClosed) {
			t.Errorf("Index after Close = %v, want ErrClosed (ForceStream=%v)", err, opts.ForceStream)
		}
		if _, err := snap.Graph(); !errors.Is(err, ErrClosed) {
			t.Errorf("Graph after Close = %v, want ErrClosed (ForceStream=%v)", err, opts.ForceStream)
		}
		if err := snap.Verify(); !errors.Is(err, ErrClosed) {
			t.Errorf("Verify after Close = %v, want ErrClosed (ForceStream=%v)", err, opts.ForceStream)
		}
		if snap.Retain() {
			t.Errorf("Retain after Close succeeded (ForceStream=%v)", opts.ForceStream)
		}
	}
}

// TestCloseDefersUnmapUntilRelease drives the reload-safety core: queries
// that retained the snapshot keep using the mapping after Close, and the
// unmap happens only when the last reference is released. (Run under -race
// in CI; touching unmapped memory would fault outright.)
func TestCloseDefersUnmapUntilRelease(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, _, path := buildFixture(t)
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	idx := mustIndex(t, snap)

	const queries = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		if !snap.Retain() {
			t.Fatalf("Retain %d failed on open snapshot", i)
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			defer snap.Release()
			<-start
			// The mapping must still be valid here even though Close has
			// (likely) already run on the main goroutine.
			if _, err := idx.Query(u); err != nil {
				errs <- err
			}
		}(i * 31 % g.N())
	}
	close(start)
	if err := snap.Close(); err != nil {
		t.Fatalf("Close with retained refs: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query after Close (retained): %v", err)
	}
	if snap.Retain() {
		t.Fatalf("Retain after full drain should fail")
	}
}

// TestWarmUp exercises the madvise warmup hint on every backing: mapped
// snapshots (with and without an embedded graph), streaming-backed snapshots
// (no-op), and closed snapshots (must not fault or retain). The hint has no
// observable result beyond not crashing and not breaking queries, so the
// test pins exactly that.
func TestWarmUp(t *testing.T) {
	g, _, path := buildFixture(t)
	for _, tc := range []struct {
		name string
		open func() (*Snapshot, error)
	}{
		{"mapped with graph", func() (*Snapshot, error) { return Open(path, g, Options{}) }},
		{"self-contained", func() (*Snapshot, error) { return Open(path, nil, Options{}) }},
		{"streaming", func() (*Snapshot, error) { return Open(path, g, Options{ForceStream: true}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := tc.open()
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			snap.WarmUp()
			idx := mustIndex(t, snap)
			if _, err := idx.Query(0); err != nil {
				t.Fatalf("query after WarmUp: %v", err)
			}
			if err := snap.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			snap.WarmUp() // must be a safe no-op on a closed snapshot
		})
	}
}
