package snapshot

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"prsim/internal/core"
	"prsim/internal/gen"
	"prsim/internal/graph"
)

func buildFixture(t *testing.T) (*graph.Graph, *core.Index, string) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 400, AvgDegree: 6, Gamma: 2.5, Directed: true, Seed: 7})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.2, Seed: 3})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "index.prsim")
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	return g, idx, path
}

func TestOpenMapped(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, built, path := buildFixture(t)
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	if !snap.Mapped() {
		t.Fatalf("Open on a supported platform should mmap")
	}
	if snap.SizeBytes() == 0 {
		t.Errorf("mapped snapshot reports zero size")
	}
	idx := snap.Index()
	if idx.NumHubs() != built.NumHubs() {
		t.Errorf("hub count: mapped %d, built %d", idx.NumHubs(), built.NumHubs())
	}
	if idx.SizeEntries() != built.SizeEntries() {
		t.Errorf("entries: mapped %d, built %d", idx.SizeEntries(), built.SizeEntries())
	}
}

// TestMappedQueryParity is the core zero-copy guarantee: for a fixed seed,
// queries answered off the mmap backing are bit-identical to queries answered
// off the streaming loader's heap backing.
func TestMappedQueryParity(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, _, path := buildFixture(t)

	streamed, err := Open(path, g, Options{ForceStream: true})
	if err != nil {
		t.Fatalf("Open (stream): %v", err)
	}
	if streamed.Mapped() {
		t.Fatalf("ForceStream still mapped")
	}
	mapped, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open (mmap): %v", err)
	}
	defer mapped.Close()

	for _, u := range []int{0, 1, 57, 399} {
		a, err := streamed.Index().Query(u)
		if err != nil {
			t.Fatalf("stream query %d: %v", u, err)
		}
		b, err := mapped.Index().Query(u)
		if err != nil {
			t.Fatalf("mapped query %d: %v", u, err)
		}
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("query %d: score support differs: %d vs %d", u, len(a.Scores), len(b.Scores))
		}
		for v, s := range a.Scores {
			if bs, ok := b.Scores[v]; !ok || math.Float64bits(bs) != math.Float64bits(s) {
				t.Fatalf("query %d node %d: stream %v (%#x) vs mapped %v (%#x)",
					u, v, s, math.Float64bits(s), bs, math.Float64bits(bs))
			}
		}
	}
}

func TestOpenChecksumMismatch(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	g, _, path := buildFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip one byte in the middle of the section payload.
	data[len(data)/2] ^= 0xff
	bad := filepath.Join(t.TempDir(), "corrupt.prsim")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := Open(bad, g, Options{VerifyChecksum: true}); err == nil {
		t.Fatalf("corrupted payload should fail checksum validation")
	}
	// The default open skips the payload CRC for O(header) start; structural
	// checks may still catch the flip (it can land in an offset array). It
	// must never panic, and an explicit Verify must flag the corruption.
	if snap, err := Open(bad, g, Options{}); err == nil {
		if verr := snap.Verify(); snap.Mapped() && verr == nil {
			t.Errorf("Verify accepted a corrupted payload")
		}
		snap.Close()
	}
	// The streaming loader always checksums v2 payloads as it parses.
	if _, err := Open(bad, g, Options{ForceStream: true}); err == nil {
		t.Fatalf("streaming load of corrupted payload should fail")
	}
}

func TestOpenTruncated(t *testing.T) {
	g, _, path := buildFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	for _, keep := range []int{0, 8, 100, len(data) / 2, len(data) - 1} {
		bad := filepath.Join(t.TempDir(), "trunc.prsim")
		if err := os.WriteFile(bad, data[:keep], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if _, err := Open(bad, g, Options{}); err == nil {
			t.Errorf("truncation to %d bytes should fail", keep)
		}
	}
}

func TestOpenMissingFile(t *testing.T) {
	g, _, _ := buildFixture(t)
	if _, err := Open(filepath.Join(t.TempDir(), "missing.prsim"), g, Options{}); err == nil {
		t.Fatalf("missing file should fail")
	}
}

func TestOpenForceStreamParityWithLoadIndex(t *testing.T) {
	g, built, path := buildFixture(t)
	snap, err := Open(path, g, Options{ForceStream: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if snap.Mapped() {
		t.Fatalf("ForceStream must not map")
	}
	if snap.Index().NumHubs() != built.NumHubs() {
		t.Errorf("hub count mismatch via streaming fallback")
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("Close (stream): %v", err)
	}
}

// TestOpenIndexFree round-trips an index with zero hubs (index-free mode):
// its hubOrder and entrySlab sections are zero-length, exercising the nil
// view edge of the zero-copy path.
func TestOpenIndexFree(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 200, AvgDegree: 5, Gamma: 2.5, Directed: true, Seed: 9})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.3, NumHubs: 0, Seed: 1})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "indexfree.prsim")
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer snap.Close()
	if snap.Index().NumHubs() != 0 {
		t.Errorf("index-free snapshot has %d hubs", snap.Index().NumHubs())
	}
	if _, err := snap.Index().Query(0); err != nil {
		t.Errorf("query on index-free snapshot: %v", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	g, _, path := buildFixture(t)
	snap, err := Open(path, g, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := snap.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
