//go:build unix

package snapshot

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapAvailable gates the zero-copy path; see Supported for the remaining
// (byte order, word size, struct layout) conditions.
const mmapAvailable = true

// mmapFile maps the whole file read-only and shared, so every process
// mapping the same snapshot shares one copy of the page cache. The file
// descriptor is closed before returning; the mapping survives it.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := statSize(f)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, fmt.Errorf("empty file")
	}
	if size > math.MaxInt {
		return nil, fmt.Errorf("file size %d exceeds address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
