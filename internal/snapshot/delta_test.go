package snapshot

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"prsim/internal/core"
	"prsim/internal/gen"
	"prsim/internal/graph"
)

// deltaFixture saves a base snapshot, applies a mutation batch, and writes
// both the delta against the base and the successor's full snapshot.
func deltaFixture(t *testing.T) (updated *core.Index, basePath, deltaPath, fullPath string) {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 400, AvgDegree: 6, Gamma: 2.5, Directed: true, Seed: 7})
	if err != nil {
		t.Fatalf("PowerLaw: %v", err)
	}
	// Label the graph: labels are the classic section edge updates never
	// touch, so they are what a delta visibly leaves out of the wire format.
	labels := make([]string, g.N())
	for i := range labels {
		labels[i] = fmt.Sprintf("entity-%06d.example.com/profile", i)
	}
	if err := g.SetLabels(labels); err != nil {
		t.Fatalf("SetLabels: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.2, Seed: 3})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	dir := t.TempDir()
	basePath = filepath.Join(dir, "base.prsim")
	if err := idx.SaveFile(basePath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	updated, _, err = idx.ApplyUpdates([]graph.EdgeUpdate{{From: 1, To: 200}, {From: 42, To: 7}})
	if err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	deltaPath = filepath.Join(dir, "base.prsim.delta")
	if err := updated.WriteDeltaFile(deltaPath, idx.Gens()); err != nil {
		t.Fatalf("WriteDeltaFile: %v", err)
	}
	fullPath = filepath.Join(dir, "full.prsim")
	if err := updated.SaveFile(fullPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	return updated, basePath, deltaPath, fullPath
}

// requireSameServingState asserts that an opened snapshot answers queries
// bit-identically to the in-memory updated index.
func requireSameServingState(t *testing.T, s *Snapshot, want *core.Index) {
	t.Helper()
	idx := mustIndex(t, s)
	if got, wantG := idx.Gens(), want.Gens(); got != wantG {
		t.Fatalf("gens %+v, want %+v", got, wantG)
	}
	for _, src := range []int{0, 1, 42, 200, 399} {
		res, err := idx.Query(src)
		if err != nil {
			t.Fatalf("Query(%d): %v", src, err)
		}
		wantRes, err := want.Query(src)
		if err != nil {
			t.Fatalf("Query(%d): %v", src, err)
		}
		if len(res.Scores) != len(wantRes.Scores) {
			t.Fatalf("source %d: score support %d, want %d", src, len(res.Scores), len(wantRes.Scores))
		}
		for v, sc := range wantRes.Scores {
			if got := res.Scores[v]; math.Float64bits(got) != math.Float64bits(sc) {
				t.Fatalf("source %d: score of %d is %v, want %v", src, v, got, sc)
			}
		}
	}
}

func TestOpenDeltaMapped(t *testing.T) {
	if !Supported() {
		t.Skip("zero-copy snapshots unsupported on this platform")
	}
	updated, basePath, deltaPath, _ := deltaFixture(t)
	snap, err := OpenDelta(basePath, deltaPath, Options{VerifyChecksum: true})
	if err != nil {
		t.Fatalf("OpenDelta: %v", err)
	}
	defer snap.Close()
	if !snap.Mapped() || !snap.GraphMapped() {
		t.Fatalf("Mapped=%v GraphMapped=%v, want true/true", snap.Mapped(), snap.GraphMapped())
	}
	requireSameServingState(t, snap, updated)
	if err := snap.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	snap.WarmUp()
	base, _ := os.Stat(basePath)
	delta, _ := os.Stat(deltaPath)
	if snap.SizeBytes() != base.Size()+delta.Size() {
		t.Errorf("SizeBytes = %d, want %d", snap.SizeBytes(), base.Size()+delta.Size())
	}
	if delta.Size() >= base.Size() {
		t.Errorf("delta (%d bytes) is not smaller than the base snapshot (%d bytes)", delta.Size(), base.Size())
	}
}

// TestOpenDeltaStreamParity pins mmap/stream equivalence for delta opens: the
// portable splice-and-stream fallback must reach the same serving state as
// the zero-copy dual mapping.
func TestOpenDeltaStreamParity(t *testing.T) {
	updated, basePath, deltaPath, fullPath := deltaFixture(t)
	stream, err := OpenDelta(basePath, deltaPath, Options{ForceStream: true})
	if err != nil {
		t.Fatalf("OpenDelta (stream): %v", err)
	}
	defer stream.Close()
	if stream.Mapped() {
		t.Fatalf("ForceStream open reports mapped")
	}
	requireSameServingState(t, stream, updated)

	// And both must match a plain open of the successor's full snapshot.
	full, err := Open(fullPath, nil, Options{})
	if err != nil {
		t.Fatalf("Open(full): %v", err)
	}
	defer full.Close()
	requireSameServingState(t, full, mustIndex(t, stream))
}

func TestOpenDeltaRejectsWrongBase(t *testing.T) {
	_, _, deltaPath, fullPath := deltaFixture(t)
	// The successor's own full snapshot has the delta's target generation,
	// not its base generation.
	for _, stream := range []bool{false, true} {
		if _, err := OpenDelta(fullPath, deltaPath, Options{ForceStream: stream}); err == nil {
			t.Errorf("OpenDelta(stream=%v) onto the wrong generation succeeded", stream)
		}
	}
}

func TestOpenDeltaDetectsCorruption(t *testing.T) {
	_, basePath, deltaPath, _ := deltaFixture(t)
	data, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-16] ^= 0x01 // shipped payload byte; invalidates the CRC
	if err := os.WriteFile(deltaPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDelta(basePath, deltaPath, Options{VerifyChecksum: true}); err == nil {
		t.Errorf("mapped OpenDelta with corrupt payload succeeded")
	}
	// The streaming path always splices with full verification.
	if _, err := OpenDelta(basePath, deltaPath, Options{ForceStream: true}); err == nil {
		t.Errorf("streaming OpenDelta with corrupt payload succeeded")
	}
}

func BenchmarkDeltaOpen(b *testing.B) {
	g, err := gen.PowerLaw(gen.PowerLawOptions{N: 20000, AvgDegree: 8, Gamma: 2.5, Directed: true, Seed: 7})
	if err != nil {
		b.Fatalf("PowerLaw: %v", err)
	}
	idx, err := core.BuildIndex(g, core.Options{Epsilon: 0.5, Seed: 3})
	if err != nil {
		b.Fatalf("BuildIndex: %v", err)
	}
	dir := b.TempDir()
	basePath := filepath.Join(dir, "base.prsim")
	if err := idx.SaveFile(basePath); err != nil {
		b.Fatalf("SaveFile: %v", err)
	}
	updated, _, err := idx.ApplyUpdates([]graph.EdgeUpdate{{From: 1, To: 200}})
	if err != nil {
		b.Fatalf("ApplyUpdates: %v", err)
	}
	deltaPath := filepath.Join(dir, "base.prsim.delta")
	if err := updated.WriteDeltaFile(deltaPath, idx.Gens()); err != nil {
		b.Fatalf("WriteDeltaFile: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := OpenDelta(basePath, deltaPath, Options{})
		if err != nil {
			b.Fatalf("OpenDelta: %v", err)
		}
		if _, err := snap.Index(); err != nil {
			b.Fatal(err)
		}
		snap.Close()
	}
}
