package montecarlo

import (
	"math"
	"testing"

	"prsim/internal/graph"
	"prsim/internal/powermethod"
)

func testGraph() *graph.Graph {
	g := graph.MustFromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 0}, {From: 3, To: 4}, {From: 4, To: 2}, {From: 1, To: 5},
		{From: 5, To: 2},
	})
	g.SortOutByInDegree()
	return g
}

func TestSinglePairMatchesExact(t *testing.T) {
	g := testGraph()
	exact, err := powermethod.Compute(g, powermethod.Options{C: 0.6})
	if err != nil {
		t.Fatalf("powermethod: %v", err)
	}
	e := MustNew(g, 0.6, 77)
	pairs := [][2]int{{0, 1}, {1, 3}, {2, 4}, {0, 5}, {3, 5}}
	for _, p := range pairs {
		got, err := e.SinglePair(p[0], p[1], 200000)
		if err != nil {
			t.Fatalf("SinglePair: %v", err)
		}
		want := exact.At(p[0], p[1])
		if math.Abs(got-want) > 0.01 {
			t.Errorf("s(%d,%d): MC %v, exact %v", p[0], p[1], got, want)
		}
	}
}

func TestSinglePairIdentity(t *testing.T) {
	g := testGraph()
	e := MustNew(g, 0.6, 1)
	got, err := e.SinglePair(2, 2, 10)
	if err != nil {
		t.Fatalf("SinglePair: %v", err)
	}
	if got != 1 {
		t.Errorf("s(v,v) = %v, want 1", got)
	}
}

func TestSingleSourceMatchesExact(t *testing.T) {
	g := testGraph()
	exact, err := powermethod.Compute(g, powermethod.Options{C: 0.6})
	if err != nil {
		t.Fatalf("powermethod: %v", err)
	}
	e := MustNew(g, 0.6, 99)
	for _, u := range []int{0, 2, 4} {
		scores, err := e.SingleSource(u, 100000)
		if err != nil {
			t.Fatalf("SingleSource(%d): %v", u, err)
		}
		for v := 0; v < g.N(); v++ {
			if math.Abs(scores[v]-exact.At(u, v)) > 0.015 {
				t.Errorf("s(%d,%d): MC %v, exact %v", u, v, scores[v], exact.At(u, v))
			}
		}
	}
}

func TestSamplesForError(t *testing.T) {
	if SamplesForError(0.1, 0.01) <= SamplesForError(0.2, 0.01) {
		t.Errorf("smaller epsilon must need more samples")
	}
	if SamplesForError(0.1, 0.001) <= SamplesForError(0.1, 0.1) {
		t.Errorf("smaller delta must need more samples")
	}
	if SamplesForError(-1, 0.5) != 1 || SamplesForError(0.1, 0) != 1 {
		t.Errorf("degenerate parameters should return 1")
	}
}

func TestGroundTruthPairs(t *testing.T) {
	g := testGraph()
	exact, _ := powermethod.Compute(g, powermethod.Options{C: 0.6})
	e := MustNew(g, 0.6, 13)
	truth, err := e.GroundTruthPairs(0, []int{1, 2, 3}, 0.02, 0.01)
	if err != nil {
		t.Fatalf("GroundTruthPairs: %v", err)
	}
	if len(truth) != 3 {
		t.Fatalf("expected 3 entries, got %d", len(truth))
	}
	for v, s := range truth {
		if math.Abs(s-exact.At(0, v)) > 0.03 {
			t.Errorf("ground truth s(0,%d) = %v, exact %v", v, s, exact.At(0, v))
		}
	}
}

func TestValidation(t *testing.T) {
	g := testGraph()
	if _, err := New(g, 0, 1); err == nil {
		t.Errorf("invalid decay should be an error")
	}
	e := MustNew(g, 0.6, 1)
	if _, err := e.SinglePair(0, 99, 10); err == nil {
		t.Errorf("invalid node should be an error")
	}
	if _, err := e.SinglePair(99, 0, 10); err == nil {
		t.Errorf("invalid node should be an error")
	}
	if _, err := e.SinglePair(0, 1, 0); err == nil {
		t.Errorf("zero samples should be an error")
	}
	if _, err := e.SingleSource(99, 10); err == nil {
		t.Errorf("invalid node should be an error")
	}
	if _, err := e.SingleSource(0, -5); err == nil {
		t.Errorf("negative samples should be an error")
	}
	if _, err := e.GroundTruthPairs(99, []int{0}, 0.1, 0.1); err == nil {
		t.Errorf("invalid source should be an error")
	}
}

func TestSinglePairWithError(t *testing.T) {
	g := testGraph()
	exact, _ := powermethod.Compute(g, powermethod.Options{C: 0.6})
	e := MustNew(g, 0.6, 55)
	got, err := e.SinglePairWithError(0, 1, 0.02, 0.01)
	if err != nil {
		t.Fatalf("SinglePairWithError: %v", err)
	}
	if math.Abs(got-exact.At(0, 1)) > 0.03 {
		t.Errorf("s(0,1) = %v, exact %v", got, exact.At(0, 1))
	}
}
