// Package montecarlo implements the classic Monte Carlo SimRank estimator
// based on pairs of √c-walks [Fogaras & Rácz]. It serves three purposes in
// this repository: the MC baseline of Section 4, the ground-truth oracle for
// the pooling methodology of Section 5.1, and an independent validator for
// PRSim's estimates in tests.
package montecarlo

import (
	"fmt"
	"math"

	"prsim/internal/graph"
	"prsim/internal/walk"
)

// Estimator estimates SimRank values by sampling pairs of √c-walks.
type Estimator struct {
	g *graph.Graph
	c float64
	w *walk.Walker
}

// New returns an estimator with decay factor c and a deterministic seed.
func New(g *graph.Graph, c float64, seed uint64) (*Estimator, error) {
	w, err := walk.NewWalker(g, c, seed)
	if err != nil {
		return nil, fmt.Errorf("montecarlo: %w", err)
	}
	return &Estimator{g: g, c: c, w: w}, nil
}

// MustNew is New but panics on error.
func MustNew(g *graph.Graph, c float64, seed uint64) *Estimator {
	e, err := New(g, c, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// SinglePair estimates s(u, v) from the given number of walk-pair samples.
func (e *Estimator) SinglePair(u, v int, samples int) (float64, error) {
	if err := e.g.CheckNode(u); err != nil {
		return 0, err
	}
	if err := e.g.CheckNode(v); err != nil {
		return 0, err
	}
	if samples <= 0 {
		return 0, fmt.Errorf("montecarlo: samples=%d must be positive", samples)
	}
	if u == v {
		return 1, nil
	}
	met := 0
	for i := 0; i < samples; i++ {
		if e.w.Meet(u, v, 0) {
			met++
		}
	}
	return float64(met) / float64(samples), nil
}

// SamplesForError returns the number of walk-pair samples that guarantee an
// additive error of at most eps with probability 1-delta for a single pair,
// by the Chernoff bound of Lemma A.1.
func SamplesForError(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	nr := (3*eps + 2) / (eps * eps) * math.Log(1/delta)
	if nr < 1 {
		return 1
	}
	return int(math.Ceil(nr))
}

// SinglePairWithError estimates s(u, v) to within eps additive error with
// probability 1-delta.
func (e *Estimator) SinglePairWithError(u, v int, eps, delta float64) (float64, error) {
	return e.SinglePair(u, v, SamplesForError(eps, delta))
}

// SingleSource estimates s(u, v) for every node v by the classic O(n·nr)
// algorithm: in each of the samples rounds one √c-walk is drawn from u and one
// from every other node, and the fraction of rounds in which the walks meet is
// the estimate.
func (e *Estimator) SingleSource(u int, samples int) ([]float64, error) {
	if err := e.g.CheckNode(u); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("montecarlo: samples=%d must be positive", samples)
	}
	n := e.g.N()
	scores := make([]float64, n)
	inc := 1 / float64(samples)
	for i := 0; i < samples; i++ {
		trace, _ := e.w.SampleTrace(u)
		// Position of u's walk at step t is trace[t]; the walk is alive for
		// len(trace)-1 steps after the start.
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			if e.meetsTrace(trace, v) {
				scores[v] += inc
			}
		}
	}
	scores[u] = 1
	return scores, nil
}

// meetsTrace samples a fresh √c-walk from v and reports whether it meets the
// recorded walk trace from the source at any step i >= 1.
func (e *Estimator) meetsTrace(trace []int, v int) bool {
	cur := v
	rng := e.w.RNG()
	sqrtC := e.w.SqrtC()
	for step := 1; step < len(trace); step++ {
		if rng.Float64() >= sqrtC {
			return false
		}
		in := e.g.InNeighbors(cur)
		if len(in) == 0 {
			return false
		}
		cur = int(in[rng.Intn(len(in))])
		if cur == trace[step] {
			return true
		}
	}
	return false
}

// GroundTruthPairs estimates s(u, v) for each v in targets with additive error
// eps at confidence 1-delta. This is the oracle used by the pooling
// methodology of Section 5.1.
func (e *Estimator) GroundTruthPairs(u int, targets []int, eps, delta float64) (map[int]float64, error) {
	if err := e.g.CheckNode(u); err != nil {
		return nil, err
	}
	samples := SamplesForError(eps, delta)
	out := make(map[int]float64, len(targets))
	for _, v := range targets {
		s, err := e.SinglePair(u, v, samples)
		if err != nil {
			return nil, err
		}
		out[v] = s
	}
	return out, nil
}
