package powermethod

import (
	"math"
	"testing"

	"prsim/internal/graph"
)

func TestComputeSharedInNeighbor(t *testing.T) {
	// 2 -> 0, 2 -> 1: s(0,1) = c exactly.
	g := graph.MustFromEdges(3, []graph.Edge{{From: 2, To: 0}, {From: 2, To: 1}})
	m, err := Compute(g, Options{C: 0.6})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if math.Abs(m.At(0, 1)-0.6) > 1e-9 {
		t.Errorf("s(0,1) = %v, want 0.6", m.At(0, 1))
	}
	if m.At(0, 2) != 0 {
		t.Errorf("s(0,2) = %v, want 0 (node 2 has no in-neighbors)", m.At(0, 2))
	}
	for v := 0; v < 3; v++ {
		if m.At(v, v) != 1 {
			t.Errorf("s(%d,%d) = %v, want 1", v, v, m.At(v, v))
		}
	}
}

func TestComputeSymmetry(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 3, To: 1},
		{From: 3, To: 2}, {From: 4, To: 0}, {From: 2, To: 4},
	})
	m, err := Compute(g, Options{C: 0.8})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if math.Abs(m.At(u, v)-m.At(v, u)) > 1e-12 {
				t.Errorf("SimRank not symmetric at (%d,%d): %v vs %v", u, v, m.At(u, v), m.At(v, u))
			}
			if m.At(u, v) < 0 || m.At(u, v) > 1 {
				t.Errorf("SimRank out of [0,1] at (%d,%d): %v", u, v, m.At(u, v))
			}
		}
	}
}

func TestComputeRecursion(t *testing.T) {
	// After convergence the values must satisfy the SimRank fixed-point
	// equation (1).
	g := graph.MustFromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 0}, {From: 3, To: 4}, {From: 4, To: 2}, {From: 1, To: 5},
		{From: 5, To: 2},
	})
	const c = 0.6
	m, err := Compute(g, Options{C: c, Iterations: 80})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			iu, iv := g.InNeighbors(u), g.InNeighbors(v)
			if len(iu) == 0 || len(iv) == 0 {
				if m.At(u, v) != 0 {
					t.Errorf("s(%d,%d) = %v, want 0 for dangling pair", u, v, m.At(u, v))
				}
				continue
			}
			var sum float64
			for _, a := range iu {
				for _, b := range iv {
					sum += m.At(int(a), int(b))
				}
			}
			want := c * sum / float64(len(iu)*len(iv))
			if math.Abs(m.At(u, v)-want) > 1e-6 {
				t.Errorf("fixed point violated at (%d,%d): %v vs %v", u, v, m.At(u, v), want)
			}
		}
	}
}

func TestSingleSourceRow(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{From: 2, To: 0}, {From: 2, To: 1}})
	row, err := SingleSource(g, 0, Options{C: 0.6})
	if err != nil {
		t.Fatalf("SingleSource: %v", err)
	}
	if len(row) != 3 {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != 1 || math.Abs(row[1]-0.6) > 1e-9 {
		t.Errorf("row = %v", row)
	}
	if _, err := SingleSource(g, 9, Options{C: 0.6}); err == nil {
		t.Errorf("invalid node should be an error")
	}
}

func TestComputeValidation(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{From: 0, To: 1}})
	if _, err := Compute(g, Options{C: 0}); err == nil {
		t.Errorf("C=0 should error")
	}
	if _, err := Compute(g, Options{C: 0.6, MaxNodes: 1}); err == nil {
		t.Errorf("MaxNodes guard should trigger")
	}
}

func TestRowIsCopy(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{From: 2, To: 0}, {From: 2, To: 1}})
	m, _ := Compute(g, Options{C: 0.6})
	row := m.Row(0)
	row[1] = 42
	if m.At(0, 1) == 42 {
		t.Errorf("Row must return a copy")
	}
}
