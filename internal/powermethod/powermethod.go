// Package powermethod computes exact SimRank scores for small graphs with the
// classic all-pairs iteration S = (c AᵀSA) ∨ I of Jeh and Widom. It is used as
// ground truth when validating every approximate algorithm in this repository
// and as the paper's "Power method" related-work baseline.
//
// The iteration stores the full n×n similarity matrix, so it is only suitable
// for graphs with a few thousand nodes.
package powermethod

import (
	"fmt"

	"prsim/internal/graph"
)

// Options configures the exact computation.
type Options struct {
	// C is the SimRank decay factor.
	C float64
	// Iterations is the number of iterations; the additive error after k
	// iterations is at most c^(k+1). Defaults to 40.
	Iterations int
	// MaxNodes guards against accidentally running the O(n²) method on a
	// large graph. Defaults to 5000.
	MaxNodes int
}

func (o *Options) fill() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("powermethod: decay factor c=%v outside (0,1)", o.C)
	}
	if o.Iterations <= 0 {
		o.Iterations = 40
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 5000
	}
	return nil
}

// Matrix is a dense symmetric SimRank matrix.
type Matrix struct {
	N      int
	Values []float64 // row-major n*n
}

// At returns s(u, v).
func (m *Matrix) At(u, v int) float64 { return m.Values[u*m.N+v] }

// Row returns the single-source SimRank vector for node u (a copy).
func (m *Matrix) Row(u int) []float64 {
	row := make([]float64, m.N)
	copy(row, m.Values[u*m.N:(u+1)*m.N])
	return row
}

// Compute runs the exact iteration and returns the SimRank matrix.
func Compute(g *graph.Graph, opts Options) (*Matrix, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := g.N()
	if n > opts.MaxNodes {
		return nil, fmt.Errorf("powermethod: graph has %d nodes, exceeds MaxNodes=%d", n, opts.MaxNodes)
	}
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for v := 0; v < n; v++ {
		cur[v*n+v] = 1
	}
	for it := 0; it < opts.Iterations; it++ {
		for u := 0; u < n; u++ {
			iu := g.InNeighbors(u)
			for v := 0; v < n; v++ {
				switch {
				case u == v:
					next[u*n+v] = 1
				default:
					iv := g.InNeighbors(v)
					if len(iu) == 0 || len(iv) == 0 {
						next[u*n+v] = 0
						continue
					}
					var sum float64
					for _, a := range iu {
						base := int(a) * n
						for _, b := range iv {
							sum += cur[base+int(b)]
						}
					}
					next[u*n+v] = opts.C * sum / float64(len(iu)*len(iv))
				}
			}
		}
		cur, next = next, cur
	}
	return &Matrix{N: n, Values: cur}, nil
}

// SingleSource returns the exact single-source SimRank vector for u. It is a
// convenience wrapper over Compute for validation code.
func SingleSource(g *graph.Graph, u int, opts Options) ([]float64, error) {
	if err := g.CheckNode(u); err != nil {
		return nil, err
	}
	m, err := Compute(g, opts)
	if err != nil {
		return nil, err
	}
	return m.Row(u), nil
}
