package prsim

// This file holds the benchmark harness that regenerates every table and
// figure of the paper's evaluation section (see EXPERIMENTS.md for the
// mapping and DESIGN.md §4 for the experiment index). Each BenchmarkFigure*
// runs the corresponding experiment once per iteration through the quick
// configuration used by cmd/prsimbench; the micro-benchmarks below measure
// the individual building blocks (index construction, queries, backward
// walks) that Table 1's complexity claims are about.
//
// Run everything with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"prsim/internal/core"
	"prsim/internal/eval"
	"prsim/internal/gen"
	"prsim/internal/pagerank"
	"prsim/internal/walk"
)

// benchConfig is the configuration the figure benchmarks run with: the quick
// grids, a single query per point, and reduced sampling so the full suite
// completes in minutes.
func benchConfig() eval.Config {
	cfg := eval.QuickConfig()
	cfg.Queries = 1
	cfg.DatasetScale = 0.1
	cfg.SampleScale = 0.05
	return cfg
}

// BenchmarkFigure1DegreeDistribution regenerates Figure 1: the cumulative
// out-degree distributions of the IT and TW stand-ins.
func BenchmarkFigure1DegreeDistribution(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.RunFigure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2ErrorVsQueryTime regenerates the measurements behind Figure
// 2 (AvgError@50 vs query time) on the DB and TW stand-ins.
func BenchmarkFigure2ErrorVsQueryTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunTradeoffs(cfg, []string{"DB", "TW"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3PrecisionVsQueryTime regenerates Figure 3 (Precision@50 vs
// query time); the measurement pass is shared with Figure 2, so this runs the
// same sweep on a different dataset pair.
func BenchmarkFigure3PrecisionVsQueryTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunTradeoffs(cfg, []string{"LJ", "IT"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4ErrorVsIndexSize regenerates Figure 4 (AvgError@50 vs index
// size) for the index-based methods on the UK stand-in.
func BenchmarkFigure4ErrorVsIndexSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTradeoffs(cfg, []string{"UK"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "PRSim" && r.IndexBytes <= 0 {
				b.Fatalf("PRSim row missing index size: %+v", r)
			}
		}
	}
}

// BenchmarkFigure5ErrorVsPreprocessing regenerates Figure 5 (AvgError@50 vs
// preprocessing time) for the index-based methods on the DB stand-in.
func BenchmarkFigure5ErrorVsPreprocessing(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTradeoffs(cfg, []string{"DB"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "SLING" && r.PrepSeconds <= 0 {
				b.Fatalf("SLING row missing preprocessing time: %+v", r)
			}
		}
	}
}

// BenchmarkFigure6aQueryTimeVsGamma regenerates Figure 6(a): query time as a
// function of the power-law exponent γ.
func BenchmarkFigure6aQueryTimeVsGamma(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure6a(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6bScalability regenerates Figure 6(b): PRSim query time as
// the graph grows (sub-linearity shows as a concave log-log curve).
func BenchmarkFigure6bScalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure6b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7aERQueryTime regenerates Figure 7(a): query time on
// Erdős–Rényi graphs of growing average degree.
func BenchmarkFigure7aERQueryTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFigure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7bERIndexSize regenerates Figure 7(b): index size on
// Erdős–Rényi graphs of growing average degree (the same sweep reports both
// series; this benchmark checks the index-size side).
func BenchmarkFigure7bERIndexSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFigure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "PRSim" && r.IndexBytes <= 0 {
				b.Fatalf("missing index size: %+v", r)
			}
		}
	}
}

// BenchmarkAblationHubCount runs the j0 sweep called out in DESIGN.md: index
// size vs query time as the number of hub nodes grows (Section 3.3's
// trade-off knob).
func BenchmarkAblationHubCount(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunHubSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackwardWalks compares the simple backward walk (Algorithm
// 2) against the Variance Bounded Backward Walk (Algorithm 3).
func BenchmarkAblationBackwardWalks(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunBackwardWalkAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSecondMoment computes the Σπ(w)² hardness measure of every
// dataset stand-in (Table 1's graph-dependent term).
func BenchmarkAblationSecondMoment(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunSecondMoments(cfg, []string{"DB", "LJ", "IT", "TW", "UK"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the core building blocks.
// ---------------------------------------------------------------------------

func benchmarkGraph(b *testing.B, n int, gamma float64) *Graph {
	b.Helper()
	g, err := GeneratePowerLawGraph(n, 10, gamma, false, 7)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkIndexBuild measures PRSim preprocessing (Algorithm 1) on a 20k-node
// power-law graph.
func BenchmarkIndexBuild(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndex(g, Options{Epsilon: 0.1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleSourceQuery measures a PRSim single-source query (Algorithm
// 4) at the paper's default error target on a 20k-node power-law graph.
func BenchmarkSingleSourceQuery(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	idx, err := BuildIndex(g, Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Query(i % g.NumNodes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryInto measures the amortized-allocation query path: the same
// workload as BenchmarkSingleSourceQuery but reusing one caller-owned Result,
// so steady-state allocation is just the score-map churn.
func BenchmarkQueryInto(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	idx, err := core.BuildIndex(g.Internal(), core.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	var res core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.QueryInto(i%g.NumNodes(), &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryThroughput measures end-to-end queries/sec on the LJ dataset
// stand-in: sequential Index.Query against Engine.QueryBatch with 1, 4 and
// GOMAXPROCS workers. PRSim queries are independent, so batch throughput
// should scale near-linearly with workers (each ns/op is one query).
func BenchmarkQueryThroughput(b *testing.B) {
	g, err := LoadDataset("LJ")
	if err != nil {
		b.Fatal(err)
	}
	idx, err := BuildIndex(g, Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	sources := make([]int, 64)
	for i := range sources {
		sources[i] = (i * 131) % g.NumNodes()
	}

	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := idx.Query(sources[i%len(sources)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	workerCounts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("Batch%dWorkers", workers), func(b *testing.B) {
			eng, err := NewEngine(idx, EngineOptions{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for done := 0; done < b.N; {
				m := len(sources)
				if rem := b.N - done; rem < m {
					m = rem
				}
				if _, err := eng.QueryBatch(ctx, sources[:m]); err != nil {
					b.Fatal(err)
				}
				done += m
			}
		})
	}
}

// BenchmarkCoalescedThroughput measures the request plane under a
// high-duplication workload: many concurrent callers spread over a handful
// of hot sources, with the result cache disabled so every answered duplicate
// is either a fresh computation or a single-flight coalesce. The tracked
// number is ns per answered request — coalescing turns a thundering herd of
// identical queries into one computation plus cheap waits, so regressions in
// the flight table or admission gate show up directly. Runs under the
// bench-trend gate via BENCH_ci.json.
func BenchmarkCoalescedThroughput(b *testing.B) {
	g, err := LoadDataset("LJ")
	if err != nil {
		b.Fatal(err)
	}
	idx, err := BuildIndex(g, Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	// Cache off: dedupe comes from coalescing alone. Unbounded queue so the
	// benchmark measures throughput, not shed rate.
	eng, err := NewEngine(idx, EngineOptions{Workers: runtime.GOMAXPROCS(0), MaxQueue: -1})
	if err != nil {
		b.Fatal(err)
	}
	hot := []int{1, 7, 42, 99} // 4 hot sources: ~16x duplication at 64 callers
	ctx := context.Background()
	var n atomic.Int64
	b.ResetTimer()
	b.SetParallelism(16) // 16x GOMAXPROCS caller goroutines
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := hot[int(n.Add(1))%len(hot)]
			if _, err := eng.Do(ctx, Request{Source: u, K: 10}); err != nil {
				// Fatal would Goexit a RunParallel worker; record and bail.
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := eng.Stats()
	if st.Queries > 0 {
		b.ReportMetric(float64(st.Coalesced)/float64(st.Queries), "coalesced/op")
	}
}

// BenchmarkQueryKernel150k measures raw single-threaded query latency on the
// 150k-node power-law benchmark graph through the pooled QueryInto path — the
// headline number the query-kernel work is judged by (see README
// "Performance" and prsimbench -experiment querypath).
func BenchmarkQueryKernel150k(b *testing.B) {
	g := benchmarkGraph(b, 150000, 2.5)
	idx, err := core.BuildIndex(g.Internal(), core.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	var res core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.QueryInto(i%g.NumNodes(), &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelQuery measures intra-query walk parallelism: the
// 150k-node single-query workload of BenchmarkQueryKernel150k executed at
// parallelism 1, 2, and GOMAXPROCS. The chunk decomposition is identical at
// every level (results are bit-identical); only the wall-clock per query
// moves, so the sub-benchmark ratios are the parallel speedup. Runs under
// the bench-trend gate via BENCH_ci.json.
func BenchmarkParallelQuery(b *testing.B) {
	g := benchmarkGraph(b, 150000, 2.5)
	idx, err := core.BuildIndex(g.Internal(), core.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	levels := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		levels = append(levels, p)
	}
	ctx := context.Background()
	for _, p := range levels {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			q := core.QueryOptions{Parallelism: p}
			var res core.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.QueryIntoOpts(ctx, i%g.NumNodes(), &res, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDoBatchFused measures the fused multi-source batch path: 16
// distinct sources per DoBatch, cache disabled so every batch computes. The
// fusion streams each eligible reserve list once per batch instead of once
// per source, and the per-source walk phases fan out over the engine's
// workers; ns/op is one full batch. Runs under the bench-trend gate via
// BENCH_ci.json.
func BenchmarkDoBatchFused(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	idx, err := BuildIndex(g, Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(idx, EngineOptions{Workers: runtime.GOMAXPROCS(0), MaxQueue: -1})
	if err != nil {
		b.Fatal(err)
	}
	sources := make([]int, 16)
	for i := range sources {
		sources[i] = (i * 977) % g.NumNodes()
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DoBatch(ctx, Request{NoCache: true}, sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReversePageRank measures the exact reverse PageRank computation
// used by preprocessing.
func BenchmarkReversePageRank(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pagerank.ReversePageRank(g.Internal(), pagerank.Options{C: 0.6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackwardSearch measures one levelwise backward push from the
// highest reverse-PageRank hub.
func BenchmarkBackwardSearch(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	pi, err := pagerank.ReversePageRank(g.Internal(), pagerank.Options{C: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	hub := pagerank.RankNodesByScore(pi)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pagerank.BackwardSearch(g.Internal(), hub, 0.6, 1e-4, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVarianceBoundedBackwardWalk measures Algorithm 3 via the exported
// ablation entry point (one simple + one bounded run per trial).
func BenchmarkVarianceBoundedBackwardWalk(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.0)
	pi, err := pagerank.ReversePageRank(g.Internal(), pagerank.Options{C: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	hub := pagerank.RankNodesByScore(pi)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.BackwardWalkAblation(g.Internal(), 0.6, hub, 2, hub, 10, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSqrtCWalk measures raw √c-walk sampling throughput.
func BenchmarkSqrtCWalk(b *testing.B) {
	g := benchmarkGraph(b, 20000, 2.5)
	w, err := walk.NewWalker(g.Internal(), 0.6, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Sample(i % g.NumNodes())
	}
}

// BenchmarkPowerLawGeneration measures the synthetic graph generator used by
// every scalability experiment.
func BenchmarkPowerLawGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.PowerLaw(gen.PowerLawOptions{N: 20000, AvgDegree: 10, Gamma: 2.5, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// snapshotFixture builds and saves an index once per benchmark binary run,
// shared by the load benchmarks below so b.N iterations only measure loading.
func snapshotFixture(b *testing.B) (*Graph, string) {
	b.Helper()
	snapshotFixtureOnce.Do(func() {
		g := benchmarkGraph(b, 20000, 2.5)
		idx, err := BuildIndex(g, Options{Epsilon: 0.1, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "prsim-bench")
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "index.prsim")
		if err := idx.SaveFile(path); err != nil {
			b.Fatal(err)
		}
		snapshotFixtureGraph, snapshotFixturePath = g, path
	})
	return snapshotFixtureGraph, snapshotFixturePath
}

var (
	snapshotFixtureOnce  sync.Once
	snapshotFixtureGraph *Graph
	snapshotFixturePath  string
)

// BenchmarkLoadIndexStream measures the portable streaming parse of a saved
// snapshot — the cold-start cost -mmap exists to avoid.
func BenchmarkLoadIndexStream(b *testing.B) {
	g, path := snapshotFixture(b)
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadIndexFile(path, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenSnapshotMmap measures the zero-copy mmap open of the same
// file, including structural validation and bookkeeping but not the payload
// CRC (compare BenchmarkLoadIndexStream; see also prsimbench -experiment
// loadtime for the ≥100k-node comparison).
func BenchmarkOpenSnapshotMmap(b *testing.B) {
	g, path := snapshotFixture(b)
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := OpenSnapshot(path, g)
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenSnapshotSelfContained measures the full serving cold start
// off one v3 file: graph CSR validation plus index assembly, no edge list
// involved. This is the number the hot-reload path pays per swap.
func BenchmarkOpenSnapshotSelfContained(b *testing.B) {
	_, path := snapshotFixture(b)
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := OpenSnapshot(path, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := idx.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
