package prsim

import (
	"fmt"
	"strings"

	"prsim/internal/eval"
	"prsim/internal/probesim"
	"prsim/internal/reads"
	"prsim/internal/sling"
	"prsim/internal/topsim"
	"prsim/internal/tsf"
)

// Algorithm is a single-source SimRank method (PRSim or one of the baselines
// evaluated in the paper) behind a common interface.
type Algorithm interface {
	// Name identifies the algorithm ("PRSim", "SLING", "ProbeSim", ...).
	Name() string
	// SingleSource returns the estimated SimRank of every node with respect
	// to u; only non-zero entries are present and the source maps to 1.
	SingleSource(u int) (map[int]float64, error)
}

// BaselineConfig tunes the baseline constructors; the zero value uses the
// defaults from the paper's experiments with moderate sampling budgets.
type BaselineConfig struct {
	// Decay is the SimRank decay factor c; 0 means DefaultDecay.
	Decay float64
	// Epsilon is the error parameter for the error-parameterised baselines
	// (SLING, ProbeSim) and PRSim; 0 means 0.1.
	Epsilon float64
	// Seed drives every randomized component.
	Seed uint64
	// SampleScale scales Monte Carlo sample counts for PRSim and ProbeSim.
	SampleScale float64
}

func (c BaselineConfig) fill() BaselineConfig {
	if c.Decay == 0 {
		c.Decay = DefaultDecay
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.SampleScale == 0 {
		c.SampleScale = 1
	}
	return c
}

// AlgorithmNames lists the algorithms NewAlgorithm accepts.
func AlgorithmNames() []string {
	return []string{"PRSim", "SLING", "ProbeSim", "READS", "TSF", "TopSim", "MonteCarlo"}
}

// NewAlgorithm constructs the named algorithm over the graph. Index-based
// methods (PRSim, SLING, READS, TSF) build their index eagerly, so the call
// can take time proportional to the graph size.
func NewAlgorithm(name string, g *Graph, cfg BaselineConfig) (Algorithm, error) {
	if g == nil {
		return nil, fmt.Errorf("prsim: nil graph")
	}
	cfg = cfg.fill()
	switch strings.ToLower(name) {
	case "prsim":
		idx, err := BuildIndex(g, Options{
			Decay: cfg.Decay, Epsilon: cfg.Epsilon, Seed: cfg.Seed, SampleScale: cfg.SampleScale,
		})
		if err != nil {
			return nil, err
		}
		return &prsimAlgorithm{idx: idx}, nil
	case "sling":
		return eval.NewSLING(g.g, sling.Options{C: cfg.Decay, EpsilonA: cfg.Epsilon, Seed: cfg.Seed})
	case "probesim":
		return eval.NewProbeSim(g.g, probesim.Options{
			C: cfg.Decay, EpsilonA: cfg.Epsilon, Seed: cfg.Seed, SampleScale: cfg.SampleScale,
		})
	case "reads":
		return eval.NewREADS(g.g, reads.Options{C: cfg.Decay, Seed: cfg.Seed})
	case "tsf":
		return eval.NewTSF(g.g, tsf.Options{C: cfg.Decay, Seed: cfg.Seed})
	case "topsim":
		return eval.NewTopSim(g.g, topsim.Options{C: cfg.Decay})
	case "montecarlo", "mc":
		samples := int(3.0 / (cfg.Epsilon * cfg.Epsilon) * cfg.SampleScale)
		if samples < 10 {
			samples = 10
		}
		return eval.NewMonteCarlo(g.g, cfg.Decay, samples, cfg.Seed)
	default:
		return nil, fmt.Errorf("prsim: unknown algorithm %q (known: %v)", name, AlgorithmNames())
	}
}

// prsimAlgorithm adapts an Index to the Algorithm interface.
type prsimAlgorithm struct {
	idx *Index
}

func (a *prsimAlgorithm) Name() string { return "PRSim" }

func (a *prsimAlgorithm) SingleSource(u int) (map[int]float64, error) {
	res, err := a.idx.Query(u)
	if err != nil {
		return nil, err
	}
	return res.Scores(), nil
}

// Index returns the underlying PRSim index.
func (a *prsimAlgorithm) Index() *Index { return a.idx }
