// Command prsimquery builds a PRSim index over a graph and answers
// single-source SimRank queries from the command line.
//
// Usage:
//
//	prsimquery -graph graph.txt -source 42 -topk 20
//	prsimquery -dataset DB -source 7 -epsilon 0.05
//	prsimquery -generate powerlaw -n 10000 -gamma 2.5 -source 0
//	prsimquery -graph graph.txt -saveindex idx.prsim        # preprocessing only
//	prsimquery -graph graph.txt -loadindex idx.prsim -source 3
//	prsimquery -graph graph.txt -loadindex idx.prsim -mmap -source 3
//	prsimquery -loadindex idx.prsim -source 3               # self-contained v3
//	prsimquery -loadindex idx.prsim -source 3 -epsilon 0.4  # faster, coarser
//	prsimquery -graph graph.txt -algorithm ProbeSim -source 3
//	prsimquery -server http://localhost:8080 -source 3      # query a prsimserve
//	prsimquery -server http://localhost:8080 -graphname web -class batch -source 3
//
// When an index is loaded (-loadindex), -epsilon becomes a per-request
// accuracy target threaded through the request plane: larger values answer
// faster with proportionally fewer walks, values below the index's build
// epsilon are clamped up to it with a warning. -timeout bounds the query's
// wall-clock time (the deadline is checked at round boundaries).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"prsim"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file to load")
		dsName    = flag.String("dataset", "", "benchmark dataset stand-in to generate (DB, LJ, IT, TW, UK)")
		generate  = flag.String("generate", "", "generate a synthetic graph instead: powerlaw or er")
		n         = flag.Int("n", 10000, "node count for -generate")
		avgDeg    = flag.Float64("degree", 10, "average degree for -generate")
		gamma     = flag.Float64("gamma", 2.5, "power-law exponent for -generate powerlaw")
		directed  = flag.Bool("directed", true, "generate directed edges")
		epsilon   = flag.Float64("epsilon", 0.1, "additive error target (per-request override when -loadindex is used)")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
		decay     = flag.Float64("decay", prsim.DefaultDecay, "SimRank decay factor c")
		seed      = flag.Uint64("seed", 1, "random seed")
		scale     = flag.Float64("samplescale", 1.0, "Monte Carlo sample scale (1.0 = paper constants)")
		source    = flag.Int("source", -1, "query node (omit to only build the index)")
		topK      = flag.Int("topk", 20, "number of results to print")
		saveIndex = flag.String("saveindex", "", "write the built index to this file")
		loadIndex = flag.String("loadindex", "", "load a previously saved index instead of building one")
		useMmap   = flag.Bool("mmap", false, "open -loadindex as a zero-copy mmap snapshot")
		algorithm = flag.String("algorithm", "PRSim", "algorithm to use (PRSim, SLING, ProbeSim, READS, TSF, TopSim, MonteCarlo)")
		server    = flag.String("server", "", "query a running prsimserve over its /v1 HTTP API instead of loading anything locally (base URL, e.g. http://localhost:8080)")
		graphName = flag.String("graphname", "", "with -server, the mounted graph to query (empty = the server's default graph)")
		class     = flag.String("class", "", "with -server, the admission class: interactive (default) or batch")
		adaptive  = flag.String("adaptive", "", "sampling mode: on (variance-based early termination), off (fixed worst-case budget), or auto/empty (the server or library default)")
	)
	flag.Parse()

	// Only an explicit -epsilon becomes a per-request override for loaded
	// indexes; the default would otherwise silently fight the build epsilon
	// stored in the snapshot.
	epsilonSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "epsilon" {
			epsilonSet = true
		}
	})

	if err := run(config{
		graphPath: *graphPath, dataset: *dsName, generate: *generate, n: *n, avgDeg: *avgDeg,
		gamma: *gamma, directed: *directed, epsilon: *epsilon, epsilonSet: epsilonSet,
		decay: *decay, seed: *seed, scale: *scale, source: *source, topK: *topK,
		saveIndex: *saveIndex, loadIndex: *loadIndex, timeout: *timeout,
		mmap: *useMmap, algorithm: *algorithm,
		server: *server, graphName: *graphName, class: *class, adaptive: *adaptive,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "prsimquery: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	graphPath, dataset, generate string
	n                            int
	avgDeg, gamma                float64
	directed                     bool
	epsilon, decay               float64
	epsilonSet                   bool
	seed                         uint64
	scale                        float64
	source, topK                 int
	saveIndex, loadIndex         string
	timeout                      time.Duration
	mmap                         bool
	algorithm                    string
	server, graphName, class     string
	adaptive                     string
}

// parseAdaptive maps the -adaptive flag onto the tri-state request mode.
func parseAdaptive(v string) (prsim.AdaptiveMode, error) {
	switch v {
	case "", "auto":
		return prsim.AdaptiveAuto, nil
	case "on":
		return prsim.AdaptiveOn, nil
	case "off":
		return prsim.AdaptiveOff, nil
	default:
		return prsim.AdaptiveAuto, fmt.Errorf("-adaptive must be one of on, off, auto")
	}
}

func run(cfg config) error {
	if cfg.server != "" {
		return runRemote(cfg)
	}
	// A self-contained v3 snapshot carries its own graph: with -loadindex and
	// no graph source, both come out of the one file.
	selfContained := cfg.loadIndex != "" && cfg.graphPath == "" && cfg.dataset == "" && cfg.generate == "" &&
		(cfg.algorithm == "PRSim" || cfg.algorithm == "prsim")
	var g *prsim.Graph
	var err error
	if !selfContained {
		g, err = loadGraph(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("graph: %d nodes, %d edges, average degree %.2f\n", g.NumNodes(), g.NumEdges(), g.AverageDegree())
		if gamma, ok := g.OutDegreeExponent(); ok {
			fmt.Printf("fitted out-degree power-law exponent gamma = %.2f\n", gamma)
		}
	}

	if cfg.algorithm != "PRSim" && cfg.algorithm != "prsim" {
		return runBaseline(cfg, g)
	}

	var idx *prsim.Index
	if cfg.loadIndex != "" {
		switch {
		case selfContained:
			idx, err = prsim.OpenSnapshot(cfg.loadIndex, nil)
			if err != nil {
				return err
			}
			g = idx.Graph()
			fmt.Printf("graph: %d nodes, %d edges, average degree %.2f\n", g.NumNodes(), g.NumEdges(), g.AverageDegree())
			if gamma, ok := g.OutDegreeExponent(); ok {
				fmt.Printf("fitted out-degree power-law exponent gamma = %.2f\n", gamma)
			}
		case cfg.mmap:
			idx, err = prsim.OpenSnapshot(cfg.loadIndex, g)
		default:
			idx, err = prsim.LoadIndexFile(cfg.loadIndex, g)
		}
		if err != nil {
			return err
		}
		defer idx.Close()
		fmt.Printf("loaded index: %d hubs, %.2f MB\n", idx.NumHubs(), float64(idx.SizeBytes())/(1<<20))
	} else {
		idx, err = prsim.BuildIndex(g, prsim.Options{
			Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed, SampleScale: cfg.scale,
		})
		if err != nil {
			return err
		}
		st := idx.Stats()
		fmt.Printf("built index in %.3fs: %d hubs, %d entries, %.2f MB, sum pi^2 = %.6f\n",
			st.BuildTime, st.NumHubs, st.Entries, float64(idx.SizeBytes())/(1<<20), st.SecondMoment)
	}
	if cfg.saveIndex != "" {
		if err := idx.SaveFile(cfg.saveIndex); err != nil {
			return err
		}
		fmt.Printf("index written to %s\n", cfg.saveIndex)
	}
	if cfg.source < 0 {
		return nil
	}

	// Per-request epsilon applies only to loaded indexes: when the index was
	// just built, -epsilon already was the build target and the request
	// inherits it.
	req := prsim.Request{Source: cfg.source}
	if cfg.loadIndex != "" && cfg.epsilonSet {
		req.Epsilon = cfg.epsilon
	}
	if req.Adaptive, err = parseAdaptive(cfg.adaptive); err != nil {
		return err
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	resp, err := idx.Do(ctx, req)
	if err != nil {
		return err
	}
	if resp.Clamped {
		fmt.Printf("note: requested epsilon %g is below the index's build epsilon; clamped to %g\n",
			req.Epsilon, resp.Epsilon)
	} else if req.Epsilon > 0 {
		fmt.Printf("per-request epsilon %g\n", resp.Epsilon)
	}
	res := resp.Result
	stats := res.Stats()
	fmt.Printf("query from node %d took %.4fs (%d walks, %d backward-walk increments, %d index reads)\n",
		cfg.source, stats.Seconds, stats.Walks, stats.BackwardWalkCost, stats.IndexEntriesRead)
	if stats.EarlyStopped {
		fmt.Printf("adaptive early stop after %d of %d rounds\n", stats.RoundsExecuted, stats.RoundsBudget)
	}
	printTop(res.TopK(cfg.topK))
	return nil
}

// topKReplyJSON is the decoded POST /v1/graphs/{name}/topk success body.
type topKReplyJSON struct {
	Source            int     `json:"source"`
	Epsilon           float64 `json:"epsilon"`
	EpsilonEffective  float64 `json:"epsilon_effective"`
	Clamped           bool    `json:"epsilon_clamped"`
	Cached            bool    `json:"cached"`
	ServedFromTighter bool    `json:"served_from_tighter"`
	Top               []struct {
		Node  int     `json:"node"`
		Label string  `json:"label"`
		Score float64 `json:"score"`
	} `json:"top"`
}

// shedError marks a 429 shed carrying the server's telemetry-derived
// Retry-After hint (zero when the server gave none).
type shedError struct {
	msg        string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.msg }

// Shed-retry policy: a 429 is retried a few times, sleeping for the server's
// Retry-After hint (capped so a pathological hint cannot stall the CLI, with
// ±25% jitter so a herd of scripted callers does not re-converge on the same
// instant). Every other failure is final — the server already classified it.
const (
	shedRetryAttempts = 4
	shedRetryCap      = 2 * time.Second
	shedRetryBase     = 100 * time.Millisecond
)

// shedBackoff turns the server's hint (or its absence) into the next sleep.
func shedBackoff(hint time.Duration, attempt int) time.Duration {
	wait := hint
	if wait <= 0 {
		wait = shedRetryBase * time.Duration(attempt)
	}
	if wait > shedRetryCap {
		wait = shedRetryCap
	}
	// Deterministic per-attempt jitter in [0.75, 1.25): scripted callers that
	// shed together spread out without the CLI needing a random source.
	frac := float64((uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15)>>40) / float64(1<<24)
	return time.Duration(float64(wait) * (0.75 + 0.5*frac))
}

// runRemote answers the query over a prsimserve's versioned HTTP API: POST
// /v1/graphs/{name}/topk with the request-plane knobs in the JSON body. A
// 429 shed honors the server's Retry-After hint with capped, jittered
// retries; after the last attempt the shed is reported with the hint so
// scripted callers know when to come back.
func runRemote(cfg config) error {
	if cfg.source < 0 {
		return fmt.Errorf("-server mode needs -source (the server's index is already built)")
	}
	name := cfg.graphName
	if name == "" {
		name = prsim.DefaultGraph
	}
	body := map[string]any{"u": cfg.source, "k": cfg.topK}
	if cfg.epsilonSet {
		body["epsilon"] = cfg.epsilon
	}
	if cfg.class != "" {
		body["class"] = cfg.class
	}
	// Validate the spelling locally, but forward only explicit modes — an
	// absent field leaves the server's own default in charge.
	if _, err := parseAdaptive(cfg.adaptive); err != nil {
		return err
	}
	if cfg.adaptive == "on" || cfg.adaptive == "off" {
		body["adaptive"] = cfg.adaptive
	}
	if cfg.timeout > 0 {
		body["timeout_ms"] = cfg.timeout.Milliseconds()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	url := strings.TrimRight(cfg.server, "/") + "/v1/graphs/" + name + "/topk"
	var out *topKReplyJSON
	for attempt := 1; ; attempt++ {
		out, err = postTopK(url, payload)
		if err == nil {
			break
		}
		var shed *shedError
		if !errors.As(err, &shed) || attempt >= shedRetryAttempts {
			return err
		}
		wait := shedBackoff(shed.retryAfter, attempt)
		fmt.Fprintf(os.Stderr, "prsimquery: %v; retrying in %s (attempt %d/%d)\n",
			shed, wait.Round(time.Millisecond), attempt, shedRetryAttempts)
		time.Sleep(wait)
	}
	if out.Clamped {
		fmt.Printf("note: requested epsilon %g is below the index's build epsilon; clamped to %g\n",
			cfg.epsilon, out.Epsilon)
	}
	fmt.Printf("remote query from node %d on graph %q (epsilon %g, cached %v)\n",
		out.Source, name, out.Epsilon, out.Cached)
	if out.ServedFromTighter {
		fmt.Printf("served from a tighter computation at epsilon %g\n", out.EpsilonEffective)
	}
	for rank, s := range out.Top {
		label := s.Label
		if label == "" {
			label = fmt.Sprint(s.Node)
		}
		fmt.Printf("%3d. node %-8s s = %.5f\n", rank+1, label, s.Score)
	}
	return nil
}

// postTopK issues one attempt against the server, decoding the error
// envelope on failure. A 429 comes back as *shedError with the Retry-After
// hint (the envelope's retry_after_ms, or the Retry-After header's seconds);
// everything else is a terminal error.
func postTopK(url string, payload []byte) (*topKReplyJSON, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error struct {
				Code         string `json:"code"`
				Message      string `json:"message"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			} `json:"error"`
		}
		msg := fmt.Sprintf("server returned %s", resp.Status)
		hint := time.Duration(0)
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error.Code != "" {
			msg = fmt.Sprintf("server returned %s (%s): %s", resp.Status, envelope.Error.Code, envelope.Error.Message)
			hint = time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond
		}
		if hint <= 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				hint = time.Duration(secs) * time.Second
			}
		}
		if hint > 0 {
			msg += fmt.Sprintf("; retry after %s", hint)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return nil, &shedError{msg: msg, retryAfter: hint}
		}
		return nil, errors.New(msg)
	}
	out := &topKReplyJSON{}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("decoding server response: %v", err)
	}
	return out, nil
}

func runBaseline(cfg config, g *prsim.Graph) error {
	algo, err := prsim.NewAlgorithm(cfg.algorithm, g, prsim.BaselineConfig{
		Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed, SampleScale: cfg.scale,
	})
	if err != nil {
		return err
	}
	if cfg.source < 0 {
		fmt.Printf("%s prepared; pass -source to run a query\n", algo.Name())
		return nil
	}
	scores, err := algo.SingleSource(cfg.source)
	if err != nil {
		return err
	}
	fmt.Printf("%s single-source query from node %d returned %d non-zero scores\n",
		algo.Name(), cfg.source, len(scores))
	type kv struct {
		node  int
		score float64
	}
	var top []kv
	for v, s := range scores {
		if v != cfg.source {
			top = append(top, kv{v, s})
		}
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].score > top[i].score {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	if len(top) > cfg.topK {
		top = top[:cfg.topK]
	}
	for rank, e := range top {
		fmt.Printf("%3d. node %-8d s = %.5f\n", rank+1, e.node, e.score)
	}
	return nil
}

func loadGraph(cfg config) (*prsim.Graph, error) {
	switch {
	case cfg.graphPath != "":
		return prsim.LoadGraphFile(cfg.graphPath)
	case cfg.dataset != "":
		return prsim.LoadDataset(cfg.dataset)
	case cfg.generate == "powerlaw":
		return prsim.GeneratePowerLawGraph(cfg.n, cfg.avgDeg, cfg.gamma, cfg.directed, cfg.seed)
	case cfg.generate == "er":
		return prsim.GenerateERGraph(cfg.n, cfg.avgDeg, cfg.directed, cfg.seed)
	default:
		return nil, fmt.Errorf("specify one of -graph, -dataset or -generate")
	}
}

func printTop(top []prsim.ScoredNode) {
	for rank, s := range top {
		fmt.Printf("%3d. node %-8s s = %.5f\n", rank+1, s.Label, s.Score)
	}
}
