package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphModes(t *testing.T) {
	// Generated modes.
	if g, err := loadGraph(config{generate: "powerlaw", n: 200, avgDeg: 5, gamma: 2}); err != nil || g.NumNodes() != 200 {
		t.Errorf("powerlaw mode: g=%v err=%v", g, err)
	}
	if g, err := loadGraph(config{generate: "er", n: 100, avgDeg: 4}); err != nil || g.NumNodes() != 100 {
		t.Errorf("er mode: g=%v err=%v", g, err)
	}
	// Dataset mode.
	if _, err := loadGraph(config{dataset: "DB"}); err != nil {
		t.Errorf("dataset mode: %v", err)
	}
	// File mode.
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if g, err := loadGraph(config{graphPath: path}); err != nil || g.NumNodes() != 3 {
		t.Errorf("file mode: g=%v err=%v", g, err)
	}
	// No source specified at all.
	if _, err := loadGraph(config{}); err == nil {
		t.Errorf("empty config should be an error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := config{
		generate: "powerlaw", n: 300, avgDeg: 5, gamma: 2.2, directed: true,
		epsilon: 0.3, decay: 0.6, seed: 1, scale: 0.1,
		source: 3, topK: 5, algorithm: "PRSim",
	}
	if err := run(cfg); err != nil {
		t.Fatalf("run PRSim: %v", err)
	}
	cfg.algorithm = "READS"
	if err := run(cfg); err != nil {
		t.Fatalf("run READS: %v", err)
	}
	cfg.algorithm = "does-not-exist"
	if err := run(cfg); err == nil {
		t.Errorf("unknown algorithm should be an error")
	}
}

func TestRunSaveAndLoadIndex(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "idx.prsim")
	base := config{
		generate: "powerlaw", n: 200, avgDeg: 5, gamma: 2.2, directed: true,
		epsilon: 0.3, decay: 0.6, seed: 4, scale: 0.1, topK: 5, algorithm: "PRSim",
		source: -1,
	}
	save := base
	save.saveIndex = idxPath
	if err := run(save); err != nil {
		t.Fatalf("run save: %v", err)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index file missing: %v", err)
	}
	load := base
	load.loadIndex = idxPath
	load.source = 7
	if err := run(load); err != nil {
		t.Fatalf("run load: %v", err)
	}
}
