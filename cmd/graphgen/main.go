// Command graphgen emits synthetic graphs as edge lists. It exposes the
// generators used by the paper's Section 5.3 experiments so that external
// tooling can consume the exact same graphs.
//
// Usage:
//
//	graphgen -type powerlaw -n 100000 -degree 10 -gamma 2.5 -out graph.txt
//	graphgen -type er -n 10000 -degree 100 -out er.txt
//	graphgen -type ba -n 10000 -m 5 -out ba.txt
//	graphgen -type dataset -dataset TW -out tw.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"prsim"
	"prsim/internal/dataset"
	"prsim/internal/gen"
	"prsim/internal/graph"
)

func main() {
	var (
		kind     = flag.String("type", "powerlaw", "generator: powerlaw, er, ba, or dataset")
		n        = flag.Int("n", 10000, "number of nodes")
		degree   = flag.Float64("degree", 10, "average degree (powerlaw, er)")
		gamma    = flag.Float64("gamma", 2.5, "cumulative power-law exponent (powerlaw)")
		m        = flag.Int("m", 5, "edges per new node (ba)")
		directed = flag.Bool("directed", false, "emit directed edges (powerlaw, er)")
		seed     = flag.Uint64("seed", 1, "random seed")
		dsName   = flag.String("dataset", "DB", "dataset stand-in name (dataset mode)")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	g, err := generate(*kind, *n, *degree, *gamma, *m, *directed, *seed, *dsName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d nodes, %d edges (average degree %.2f)\n",
		g.N(), g.M(), g.AverageDegree())
}

func generate(kind string, n int, degree, gamma float64, m int, directed bool, seed uint64, dsName string) (*graph.Graph, error) {
	switch kind {
	case "powerlaw":
		return gen.PowerLaw(gen.PowerLawOptions{N: n, AvgDegree: degree, Gamma: gamma, Directed: directed, Seed: seed})
	case "er":
		return gen.ErdosRenyi(gen.EROptions{N: n, AvgDegree: degree, Directed: directed, Seed: seed})
	case "ba":
		return gen.BarabasiAlbert(gen.BAOptions{N: n, M: m, Seed: seed})
	case "dataset":
		g, _, err := dataset.Load(dsName)
		return g, err
	default:
		return nil, fmt.Errorf("unknown generator type %q (want powerlaw, er, ba, or dataset); see also the %v stand-ins", kind, prsim.DatasetNames())
	}
}
