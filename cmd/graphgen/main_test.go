package main

import "testing"

func TestGenerate(t *testing.T) {
	cases := []struct {
		kind    string
		n       int
		degree  float64
		gamma   float64
		m       int
		ds      string
		wantErr bool
	}{
		{kind: "powerlaw", n: 500, degree: 6, gamma: 2.5},
		{kind: "er", n: 300, degree: 4},
		{kind: "ba", n: 200, m: 3},
		{kind: "dataset", ds: "DB"},
		{kind: "dataset", ds: "nope", wantErr: true},
		{kind: "unknown", wantErr: true},
		{kind: "powerlaw", n: 0, degree: 6, gamma: 2, wantErr: true},
	}
	for _, c := range cases {
		g, err := generate(c.kind, c.n, c.degree, c.gamma, c.m, false, 1, c.ds)
		if c.wantErr {
			if err == nil {
				t.Errorf("generate(%q) expected error", c.kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("generate(%q): %v", c.kind, err)
			continue
		}
		if g.N() == 0 || g.M() == 0 {
			t.Errorf("generate(%q) produced an empty graph", c.kind)
		}
	}
}
