package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prsim/internal/router"
)

// setRemoteTransport points the server's remote-shard transport at an
// in-process handler (or a fault-injecting wrapper) for the duration of one
// test. Tests in this package run sequentially, so a package-level swap with
// cleanup restore is race-free.
func setRemoteTransport(t *testing.T, tr http.RoundTripper) {
	t.Helper()
	old := remoteTransport
	remoteTransport = tr
	t.Cleanup(func() { remoteTransport = old })
}

// putJSON PUTs a JSON body and decodes the JSON response.
func putJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("PUT %s: decoding body: %v", url, err)
		}
	}
	return resp
}

// mountWebBody is the placement mount request used across these tests: two
// shard slots on hosts b0/b1, pointing at the backend's default graph, with
// a huge health interval (these tests drive the call path, not the prober)
// and a breaker threshold high enough that blackhole tests recover instantly
// once the fault clears.
const mountWebBody = `{
	"placement": [["http://b0"], ["http://b1"]],
	"remote_graph": "default",
	"health_interval_ms": 3600000,
	"max_attempts": 1,
	"attempt_timeout_ms": 500,
	"breaker_threshold": 1000
}`

// TestV1RemotePlacementMount mounts a remote-placement graph over the admin
// API and checks the serving surface end to end: query/topk/pair answers are
// bit-identical to the backend serving the same snapshot, the graph list and
// stats flag the graph as remote, the health endpoint exposes the replica
// map, mutations are refused with a conflict, and validation rejects
// malformed placements.
func TestV1RemotePlacementMount(t *testing.T) {
	backend, bts, _, _ := newV1Server(t, 2)
	setRemoteTransport(t, &router.HandlerTransport{Handler: backend.handler()})
	_, ts, _, _ := newV1Server(t, 1)

	var mounted struct {
		Status string `json:"status"`
		Graph  string `json:"graph"`
		Shards int    `json:"shards"`
		Remote bool   `json:"remote"`
	}
	resp := putJSON(t, ts.URL+"/v1/graphs/web", mountWebBody, &mounted)
	if resp.StatusCode != http.StatusCreated || !mounted.Remote || mounted.Shards != 2 {
		t.Fatalf("mount = %d %+v, want 201 remote with 2 shards", resp.StatusCode, mounted)
	}

	// Graph list flags the remote mount.
	var list struct {
		Graphs []map[string]any `json:"graphs"`
	}
	getJSON(t, ts.URL+"/v1/graphs", &list)
	found := false
	for _, g := range list.Graphs {
		if g["name"] == "web" {
			found = true
			if g["remote"] != true {
				t.Errorf("graph list entry for web = %v, want remote:true", g)
			}
		}
	}
	if !found {
		t.Fatalf("graph list %v missing web", list.Graphs)
	}

	// Single-source parity: the frontend's answer over the wire must match
	// the backend serving the identical snapshot locally.
	var fres, bres queryResultJSON
	getJSON(t, ts.URL+"/v1/graphs/web/query?u=3", &fres)
	getJSON(t, bts.URL+"/v1/graphs/default/query?u=3", &bres)
	mustEqualJSON(t, "single-source query", fres, bres)

	// Batch parity in input order.
	var fbatch, bbatch struct {
		Results []*queryResultJSON `json:"results"`
		Epsilon float64            `json:"epsilon"`
	}
	body := `{"sources": [0, 1, 2, 3, 4, 5, 6, 7]}`
	postJSON(t, ts.URL+"/v1/graphs/web/query", body, &fbatch)
	postJSON(t, bts.URL+"/v1/graphs/default/query", body, &bbatch)
	mustEqualJSON(t, "batch query", fbatch, bbatch)

	// Merged multi-source top-k parity (deterministic merge).
	var ftop, btop struct {
		Top []scoredNodeJSON `json:"top"`
		K   int              `json:"k"`
	}
	getJSON(t, ts.URL+"/v1/graphs/web/topk?u=3&u=9&u=27&k=5", &ftop)
	getJSON(t, bts.URL+"/v1/graphs/default/topk?u=3&u=9&u=27&k=5", &btop)
	mustEqualJSON(t, "merged topk", ftop, btop)

	// Pair parity.
	var fpair, bpair struct {
		Score float64 `json:"score"`
	}
	getJSON(t, ts.URL+"/v1/graphs/web/pair?u=3&v=9", &fpair)
	getJSON(t, bts.URL+"/v1/graphs/default/pair?u=3&v=9", &bpair)
	if fpair.Score != bpair.Score {
		t.Errorf("pair score = %v, backend = %v", fpair.Score, bpair.Score)
	}

	// Stats render the client-side remote view: per-shard resilience
	// counters and the replica health map instead of index statistics.
	var stats struct {
		Remote bool             `json:"remote"`
		Shards []map[string]any `json:"shards"`
		Health []map[string]any `json:"health"`
		Engine map[string]any   `json:"engine"`
	}
	getJSON(t, ts.URL+"/v1/graphs/web/stats", &stats)
	if !stats.Remote || len(stats.Shards) != 2 || len(stats.Health) != 2 {
		t.Errorf("remote stats = %+v, want remote with 2 shard and health entries", stats)
	}
	if q, ok := stats.Engine["queries"].(float64); !ok || q == 0 {
		t.Errorf("remote stats queries = %v, want > 0", stats.Engine["queries"])
	}

	// The health endpoint exposes the replica map the router routes around.
	var health struct {
		Graph  string `json:"graph"`
		Remote bool   `json:"remote"`
		Shards []struct {
			Shard    int    `json:"shard"`
			Remote   bool   `json:"remote"`
			State    string `json:"state"`
			Replicas []struct {
				Endpoint string `json:"endpoint"`
				State    string `json:"state"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	getJSON(t, ts.URL+"/v1/graphs/web/health", &health)
	if !health.Remote || len(health.Shards) != 2 {
		t.Fatalf("health = %+v, want remote with 2 shards", health)
	}
	for i, sh := range health.Shards {
		if !sh.Remote || sh.State != "up" || len(sh.Replicas) != 1 {
			t.Errorf("health shard %d = %+v, want remote up with 1 replica", i, sh)
		}
		if want := fmt.Sprintf("http://b%d", i); sh.Replicas[0].Endpoint != want {
			t.Errorf("shard %d replica endpoint = %q, want %q", i, sh.Replicas[0].Endpoint, want)
		}
	}

	// Mutations belong on the shard hosts: reload and edges answer 409.
	var reloadErr struct {
		Error errorJSON `json:"error"`
	}
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/reload", `{}`, &reloadErr); resp.StatusCode != http.StatusConflict || reloadErr.Error.Code != codeConflict {
		t.Errorf("reload on remote graph = %d %+v, want 409 conflict", resp.StatusCode, reloadErr)
	}
	var edgesErr struct {
		Error errorJSON `json:"error"`
	}
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/edges", `{"updates": [{"from": 0, "to": 1}]}`, &edgesErr); resp.StatusCode != http.StatusConflict || edgesErr.Error.Code != codeConflict {
		t.Errorf("edges on remote graph = %d %+v, want 409 conflict", resp.StatusCode, edgesErr)
	}

	// Duplicate mounts conflict; malformed placements are the client's fault.
	for _, tc := range []struct {
		name, graph, body string
		status            int
		code              string
	}{
		{"already mounted", "web", mountWebBody, http.StatusConflict, codeConflict},
		{"snapshot and placement", "web2", `{"snapshot": "x.prsim", "placement": [["http://b0"]]}`, http.StatusBadRequest, codeInvalidArgument},
		{"empty shard slot", "web2", `{"placement": [[]]}`, http.StatusBadRequest, codeInvalidArgument},
		{"non-http endpoint", "web2", `{"placement": [["ftp://b0"]]}`, http.StatusBadRequest, codeInvalidArgument},
		{"default graph", "default", `{"placement": [["http://b0"]]}`, http.StatusBadRequest, codeInvalidArgument},
		{"unknown field", "web2", `{"placement": [["http://b0"]], "bogus": 1}`, http.StatusBadRequest, codeInvalidArgument},
	} {
		var e struct {
			Error errorJSON `json:"error"`
		}
		resp := putJSON(t, ts.URL+"/v1/graphs/"+tc.graph, tc.body, &e)
		if resp.StatusCode != tc.status || e.Error.Code != tc.code {
			t.Errorf("%s: mount = %d %q, want %d %q", tc.name, resp.StatusCode, e.Error.Code, tc.status, tc.code)
		}
	}

	// Unmount frees the name; queries then answer 404.
	var unmounted struct {
		Status string `json:"status"`
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/web", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE web: %v", err)
	}
	if err := json.NewDecoder(dresp.Body).Decode(&unmounted); err != nil {
		t.Fatalf("decoding unmount: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || unmounted.Status != "unmounted" {
		t.Fatalf("unmount = %d %+v", dresp.StatusCode, unmounted)
	}
	var gone struct {
		Error errorJSON `json:"error"`
	}
	if resp := getJSON(t, ts.URL+"/v1/graphs/web/query?u=3", &gone); resp.StatusCode != http.StatusNotFound || gone.Error.Code != codeUnknownGraph {
		t.Errorf("query after unmount = %d %q, want 404 unknown_graph", resp.StatusCode, gone.Error.Code)
	}
}

// TestV1RemoteDegradedRendering blackholes one of two remote shards and
// drives the degradation contract over HTTP: the default multi-source
// request fails with 503 shard_unavailable, allow_partial returns the
// surviving shard's answers with null entries plus the degraded envelope,
// a single-source request on the dead shard is 503 even under
// allow_partial, and once the fault clears full bit-parity returns.
func TestV1RemoteDegradedRendering(t *testing.T) {
	backend, bts, _, _ := newV1Server(t, 1)
	fault := router.NewFaultTransport(&router.HandlerTransport{Handler: backend.handler()}, 1)
	setRemoteTransport(t, fault)
	_, ts, _, _ := newV1Server(t, 1)

	if resp := putJSON(t, ts.URL+"/v1/graphs/web", mountWebBody, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("mount = %d", resp.StatusCode)
	}

	sources := `[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]`
	type batchReply struct {
		Results       []*queryResultJSON `json:"results"`
		Epsilon       float64            `json:"epsilon"`
		Degraded      bool               `json:"degraded"`
		MissingShards []int              `json:"missing_shards"`
	}

	// Healthy baseline: every source answered, no degradation flag.
	var healthy batchReply
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/query", `{"sources": `+sources+`}`, &healthy); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy batch = %d", resp.StatusCode)
	}
	if healthy.Degraded || len(healthy.Results) != 10 {
		t.Fatalf("healthy batch = %+v, want 10 results undegraded", healthy)
	}
	for i, r := range healthy.Results {
		if r == nil {
			t.Fatalf("healthy batch result %d is null", i)
		}
	}

	fault.Blackhole("b1")

	// Default contract: fail fast with a typed 503 naming the shard.
	var failed struct {
		Error errorJSON `json:"error"`
	}
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/query", `{"sources": `+sources+`}`, &failed); resp.StatusCode != http.StatusServiceUnavailable || failed.Error.Code != codeShardUnavailable {
		t.Fatalf("blackholed batch = %d %+v, want 503 shard_unavailable", resp.StatusCode, failed)
	}

	// allow_partial: surviving shard's answers come back, missing sources
	// render as nulls, and the envelope carries the missing shard list.
	var partial batchReply
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/query", `{"sources": `+sources+`, "allow_partial": true}`, &partial); resp.StatusCode != http.StatusOK {
		t.Fatalf("partial batch = %d", resp.StatusCode)
	}
	if !partial.Degraded || len(partial.MissingShards) != 1 || partial.MissingShards[0] != 1 {
		t.Fatalf("partial batch degraded=%v missing=%v, want degraded missing [1]", partial.Degraded, partial.MissingShards)
	}
	nulls, deadSource := 0, -1
	for i, r := range partial.Results {
		if r == nil {
			nulls++
			deadSource = i // sources are 0..9, so index == source id
			continue
		}
		// Surviving entries are bit-identical to the healthy baseline.
		mustEqualJSON(t, fmt.Sprintf("surviving result %d", i), r, healthy.Results[i])
	}
	if nulls == 0 || nulls == len(partial.Results) {
		t.Fatalf("partial batch has %d/%d nulls, want a strict subset missing", nulls, len(partial.Results))
	}

	// A single-source request has nothing partial to return: 503 even with
	// allow_partial.
	var single struct {
		Error errorJSON `json:"error"`
	}
	url := fmt.Sprintf("%s/v1/graphs/web/query?u=%d&allow_partial=1", ts.URL, deadSource)
	if resp := getJSON(t, url, &single); resp.StatusCode != http.StatusServiceUnavailable || single.Error.Code != codeShardUnavailable {
		t.Errorf("single-source on dead shard = %d %+v, want 503 shard_unavailable", resp.StatusCode, single)
	}

	// Merged top-k degrades the same way.
	var top struct {
		Top           []scoredNodeJSON `json:"top"`
		Degraded      bool             `json:"degraded"`
		MissingShards []int            `json:"missing_shards"`
	}
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/topk", `{"sources": `+sources+`, "k": 5, "allow_partial": true}`, &top); resp.StatusCode != http.StatusOK {
		t.Fatalf("partial topk = %d", resp.StatusCode)
	}
	if !top.Degraded || len(top.MissingShards) != 1 || top.MissingShards[0] != 1 || len(top.Top) == 0 {
		t.Errorf("partial topk = %+v, want degraded missing [1] with results", top)
	}

	// Client-side failure counters are visible to operators.
	var stats struct {
		Shards []struct {
			Shard    int   `json:"shard"`
			Failures int64 `json:"failures"`
		} `json:"shards"`
	}
	getJSON(t, ts.URL+"/v1/graphs/web/stats", &stats)
	if len(stats.Shards) != 2 || stats.Shards[1].Failures == 0 {
		t.Errorf("remote stats shards = %+v, want failures on shard 1", stats.Shards)
	}

	// Fault clears; the breaker never opened (huge threshold), so the next
	// batch is whole again and bit-identical to the backend.
	fault.Clear()
	var recovered, reference batchReply
	if resp := postJSON(t, ts.URL+"/v1/graphs/web/query", `{"sources": `+sources+`}`, &recovered); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered batch = %d", resp.StatusCode)
	}
	if recovered.Degraded {
		t.Error("recovered batch still degraded")
	}
	postJSON(t, bts.URL+"/v1/graphs/default/query", `{"sources": `+sources+`}`, &reference)
	mustEqualJSON(t, "recovered batch", recovered.Results, reference.Results)
}

// TestV1RemoteAdminAuth pins the bearer-auth 401 envelope on the remote
// admin plane: placement mounts and the health endpoint are gated by
// -admintoken while the query plane stays open.
func TestV1RemoteAdminAuth(t *testing.T) {
	backend, _, _, _ := newV1Server(t, 1)
	setRemoteTransport(t, &router.HandlerTransport{Handler: backend.handler()})
	_, ts, _, _ := newEdgesServer(t, func(c *config) { c.adminToken = "sesame" })

	do := func(method, url, token, body string) (*http.Response, []byte) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, url, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, raw
	}

	checkDenied := func(name string, resp *http.Response, raw []byte) {
		t.Helper()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s = %d, want 401", name, resp.StatusCode)
		}
		if www := resp.Header.Get("WWW-Authenticate"); !strings.Contains(www, "Bearer") {
			t.Errorf("%s: WWW-Authenticate = %q, want Bearer challenge", name, www)
		}
		var e struct {
			Error errorJSON `json:"error"`
		}
		if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != codeUnauthorized {
			t.Errorf("%s: body %s, want unauthorized envelope", name, raw)
		}
	}

	mountBody := `{"placement": [["http://b0"]], "remote_graph": "default"}`
	resp, raw := do(http.MethodPut, ts.URL+"/v1/graphs/web", "", mountBody)
	checkDenied("placement mount without token", resp, raw)
	resp, raw = do(http.MethodPut, ts.URL+"/v1/graphs/web", "wrong", mountBody)
	checkDenied("placement mount with wrong token", resp, raw)
	resp, raw = do(http.MethodGet, ts.URL+"/v1/graphs/default/health", "", "")
	checkDenied("health without token", resp, raw)

	// The right token passes: mount succeeds and health answers.
	resp, raw = do(http.MethodPut, ts.URL+"/v1/graphs/web", "sesame", mountBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("authorized mount = %d: %s", resp.StatusCode, raw)
	}
	resp, raw = do(http.MethodGet, ts.URL+"/v1/graphs/web/health", "sesame", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"remote":true`) {
		t.Fatalf("authorized health = %d: %s", resp.StatusCode, raw)
	}

	// The query plane stays open — remote graphs included.
	var res queryResultJSON
	if qresp := getJSON(t, ts.URL+"/v1/graphs/web/query?u=3", &res); qresp.StatusCode != http.StatusOK || res.Support == 0 {
		t.Fatalf("unauthenticated query on remote graph = %d %+v", qresp.StatusCode, res)
	}
}

// TestV1ShardMapBoot exercises the -shardmap boot path: a valid map mounts
// its remote graphs (served with full parity), and malformed maps are
// rejected with actionable errors before anything is served.
func TestV1ShardMapBoot(t *testing.T) {
	backend, bts, _, _ := newV1Server(t, 1)
	setRemoteTransport(t, &router.HandlerTransport{Handler: backend.handler()})
	srv, ts, _, _ := newV1Server(t, 1)

	writeMap := func(name, contents string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
		return path
	}

	good := writeMap("map.json", `{
		"graphs": {
			"maps-a": {"placement": [["http://b0"]], "remote_graph": "default"},
			"maps-b": {"placement": [["http://b0"], ["http://b1"]], "remote_graph": "default"}
		}
	}`)
	if err := srv.mountShardMap(good); err != nil {
		t.Fatalf("mountShardMap: %v", err)
	}
	for _, g := range []string{"maps-a", "maps-b"} {
		var res queryResultJSON
		if resp := getJSON(t, ts.URL+"/v1/graphs/"+g+"/query?u=3", &res); resp.StatusCode != http.StatusOK || res.Support == 0 {
			t.Errorf("query on shard-map graph %s = %d %+v", g, resp.StatusCode, res)
		}
	}
	// Shard-map graphs answer identically to the backend they proxy.
	var fres, bres queryResultJSON
	getJSON(t, ts.URL+"/v1/graphs/maps-a/query?u=5", &fres)
	getJSON(t, bts.URL+"/v1/graphs/default/query?u=5", &bres)
	mustEqualJSON(t, "shard-map parity", fres, bres)

	for _, tc := range []struct {
		name, contents, wantErr string
	}{
		{"missing placement", `{"graphs": {"x": {}}}`, "has no placement"},
		{"snapshot and placement", `{"graphs": {"x": {"snapshot": "s.prsim", "placement": [["http://b0"]]}}}`, "sets both snapshot and placement"},
		{"unknown field", `{"graphs": {"x": {"placement": [["http://b0"]], "bogus": 1}}}`, "bogus"},
		{"invalid name", `{"graphs": {"bad name!": {"placement": [["http://b0"]]}}}`, "invalid graph name"},
		{"bad endpoint", `{"graphs": {"x": {"placement": [["tcp://b0"]]}}}`, "not an http(s) base URL"},
	} {
		path := writeMap(tc.name+".json", tc.contents)
		err := srv.mountShardMap(path)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: mountShardMap err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// mustEqualJSON fails the test unless both values marshal to identical JSON —
// the bit-parity check used across the remote serving tests.
func mustEqualJSON(t *testing.T, label string, got, want any) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("%s: marshaling got: %v", label, err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("%s: marshaling want: %v", label, err)
	}
	if string(g) != string(w) {
		t.Errorf("%s diverges:\n got: %s\nwant: %s", label, g, w)
	}
}
