package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prsim"
)

// newTestServer writes a graph and a saved index to disk, then boots the
// server through the same buildServer path main uses, exercising the
// load-index-at-startup flow end to end.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return newTestServerMmap(t, false)
}

func newTestServerMmap(t *testing.T, mmap bool) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	srv, err := buildServer(config{
		graphPath: graphPath,
		loadIndex: indexPath,
		mmap:      mmap,
		workers:   4,
		cacheSize: 16,
		timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type = %q, want application/json", url, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp
}

func TestServeQuery(t *testing.T) {
	ts := newTestServer(t)
	var res queryResultJSON
	resp := getJSON(t, ts.URL+"/query?u=3", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Source != 3 {
		t.Errorf("source = %d, want 3", res.Source)
	}
	if res.Support == 0 || len(res.Scores) == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// Source leads with self-similarity 1, and scores are sorted descending.
	if res.Scores[0].Node != 3 || res.Scores[0].Score != 1 {
		t.Errorf("first score = %+v, want node 3 score 1", res.Scores[0])
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Score > res.Scores[i-1].Score {
			t.Errorf("scores not sorted at %d: %+v", i, res.Scores)
		}
	}

	// limit caps the rendered nodes but Support still reports the full count.
	var limited queryResultJSON
	getJSON(t, ts.URL+"/query?u=3&limit=2", &limited)
	if len(limited.Scores) != 2 {
		t.Errorf("limit=2 returned %d scores", len(limited.Scores))
	}
	if limited.Support != res.Support {
		t.Errorf("limited support %d, want %d", limited.Support, res.Support)
	}
}

func TestServeQueryBatch(t *testing.T) {
	ts := newTestServer(t)
	var batch struct {
		Results []queryResultJSON `json:"results"`
	}
	resp := getJSON(t, ts.URL+"/query?u=1&u=7&u=1", &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	if batch.Results[0].Source != 1 || batch.Results[1].Source != 7 || batch.Results[2].Source != 1 {
		t.Errorf("batch sources wrong: %+v", batch.Results)
	}
	// Identical sources must produce identical (deterministic) renderings.
	a, _ := json.Marshal(batch.Results[0])
	b, _ := json.Marshal(batch.Results[2])
	if string(a) != string(b) {
		t.Errorf("same source diverged across a batch:\n%s\n%s", a, b)
	}
}

func TestServeTopK(t *testing.T) {
	ts := newTestServer(t)
	var res struct {
		Source int              `json:"source"`
		K      int              `json:"k"`
		Top    []scoredNodeJSON `json:"top"`
	}
	resp := getJSON(t, ts.URL+"/topk?u=5&k=7", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Source != 5 || res.K != 7 {
		t.Errorf("echo fields wrong: %+v", res)
	}
	if len(res.Top) > 7 {
		t.Errorf("topk returned %d items", len(res.Top))
	}
	for _, s := range res.Top {
		if s.Node == 5 {
			t.Errorf("topk must exclude the source: %+v", res.Top)
		}
	}
}

func TestServePair(t *testing.T) {
	ts := newTestServer(t)
	var res struct {
		U     int     `json:"u"`
		V     int     `json:"v"`
		Score float64 `json:"score"`
	}
	resp := getJSON(t, ts.URL+"/pair?u=4&v=4", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Score != 1 {
		t.Errorf("s(4,4) = %v, want 1", res.Score)
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	ts := newTestServer(t)
	var health map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Serve a couple of queries so the counters move.
	getJSON(t, ts.URL+"/query?u=2", nil)
	getJSON(t, ts.URL+"/query?u=2", nil)

	var stats struct {
		Graph  map[string]float64 `json:"graph"`
		Index  map[string]any     `json:"index"`
		Engine map[string]float64 `json:"engine"`
	}
	resp = getJSON(t, ts.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if stats.Graph["nodes"] != 150 {
		t.Errorf("stats nodes = %v, want 150", stats.Graph["nodes"])
	}
	if hubs, _ := stats.Index["hubs"].(float64); hubs <= 0 {
		t.Errorf("stats hubs = %v, want > 0", stats.Index["hubs"])
	}
	if stats.Index["backing"] != "heap" {
		t.Errorf("stats backing = %v, want heap for a streaming load", stats.Index["backing"])
	}
	if stats.Engine["queries"] < 2 {
		t.Errorf("stats queries = %v, want >= 2", stats.Engine["queries"])
	}
	if stats.Engine["cache_hits"] < 1 {
		t.Errorf("stats cache_hits = %v, want >= 1 after repeated query", stats.Engine["cache_hits"])
	}
}

// TestServeMmapBacking boots the server with -mmap and checks queries work
// and /stats reports the mmap backing.
func TestServeMmapBacking(t *testing.T) {
	ts := newTestServerMmap(t, true)
	var res queryResultJSON
	if resp := getJSON(t, ts.URL+"/query?u=2", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if res.Source != 2 {
		t.Errorf("query source = %d, want 2", res.Source)
	}
	var stats struct {
		Index map[string]any `json:"index"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	// On platforms without zero-copy support the open falls back to the
	// streaming loader and reports heap; both are valid outcomes, but the
	// field must be present.
	if b := stats.Index["backing"]; b != "mmap" && b != "heap" {
		t.Errorf("stats backing = %v, want mmap or heap", b)
	}
}

// TestServeMmapRequiresLoadIndex checks -mmap without -loadindex is rejected
// at startup.
func TestServeMmapRequiresLoadIndex(t *testing.T) {
	g, err := prsim.GeneratePowerLawGraph(50, 4, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(config{graphPath: graphPath, mmap: true}); err == nil {
		t.Fatal("expected -mmap without -loadindex to fail")
	}
}

func TestServeErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/query", http.StatusBadRequest},              // missing u
		{"/query?u=abc", http.StatusBadRequest},        // non-integer
		{"/query?u=99999", http.StatusBadRequest},      // out of range
		{"/query?u=1&limit=-2", http.StatusBadRequest}, // bad limit
		{"/topk?u=1&k=0", http.StatusBadRequest},       // bad k
		{"/pair?u=1", http.StatusBadRequest},           // missing v
		{"/pair?u=1&v=99999", http.StatusBadRequest},   // out of range
	}
	for _, c := range cases {
		var body map[string]string
		resp := getJSON(t, ts.URL+c.path, &body)
		if resp.StatusCode != c.want {
			t.Errorf("GET %s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: missing error message", c.path)
		}
	}
}

// TestServeIndexGraphMismatch checks the startup path rejects an index saved
// for a different graph.
func TestServeIndexGraphMismatch(t *testing.T) {
	dir := t.TempDir()
	small, err := prsim.GeneratePowerLawGraph(50, 4, 2.5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := prsim.GeneratePowerLawGraph(80, 4, 2.5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := prsim.BuildIndex(small, prsim.Options{Epsilon: 0.3, SampleScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatal(err)
	}
	graphPath := filepath.Join(dir, "big.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := buildServer(config{graphPath: graphPath, loadIndex: indexPath}); err == nil {
		t.Fatal("expected index/graph mismatch error")
	}
}

func TestBuildServerNoGraph(t *testing.T) {
	if _, err := buildServer(config{}); err == nil {
		t.Fatal("expected error when neither -graph nor -dataset given")
	}
}
