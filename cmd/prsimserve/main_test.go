package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prsim"
)

// newTestServer writes a graph and a saved index to disk, then boots the
// server through the same buildServer path main uses, exercising the
// load-index-at-startup flow end to end.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return newTestServerMmap(t, false)
}

func newTestServerMmap(t *testing.T, mmap bool) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	srv, err := buildServer(config{
		graphPath: graphPath,
		loadIndex: indexPath,
		mmap:      mmap,
		workers:   4,
		cacheSize: 16,
		timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: Content-Type = %q, want application/json", url, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp
}

func TestServeQuery(t *testing.T) {
	ts := newTestServer(t)
	var res queryResultJSON
	resp := getJSON(t, ts.URL+"/query?u=3", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Source != 3 {
		t.Errorf("source = %d, want 3", res.Source)
	}
	if res.Support == 0 || len(res.Scores) == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// Source leads with self-similarity 1, and scores are sorted descending.
	if res.Scores[0].Node != 3 || res.Scores[0].Score != 1 {
		t.Errorf("first score = %+v, want node 3 score 1", res.Scores[0])
	}
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Score > res.Scores[i-1].Score {
			t.Errorf("scores not sorted at %d: %+v", i, res.Scores)
		}
	}

	// limit caps the rendered nodes but Support still reports the full count.
	var limited queryResultJSON
	getJSON(t, ts.URL+"/query?u=3&limit=2", &limited)
	if len(limited.Scores) != 2 {
		t.Errorf("limit=2 returned %d scores", len(limited.Scores))
	}
	if limited.Support != res.Support {
		t.Errorf("limited support %d, want %d", limited.Support, res.Support)
	}
}

func TestServeQueryBatch(t *testing.T) {
	ts := newTestServer(t)
	var batch struct {
		Results []queryResultJSON `json:"results"`
	}
	resp := getJSON(t, ts.URL+"/query?u=1&u=7&u=1", &batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	if batch.Results[0].Source != 1 || batch.Results[1].Source != 7 || batch.Results[2].Source != 1 {
		t.Errorf("batch sources wrong: %+v", batch.Results)
	}
	// Identical sources must produce identical (deterministic) renderings.
	a, _ := json.Marshal(batch.Results[0])
	b, _ := json.Marshal(batch.Results[2])
	if string(a) != string(b) {
		t.Errorf("same source diverged across a batch:\n%s\n%s", a, b)
	}
}

func TestServeTopK(t *testing.T) {
	ts := newTestServer(t)
	var res struct {
		Source int              `json:"source"`
		K      int              `json:"k"`
		Top    []scoredNodeJSON `json:"top"`
	}
	resp := getJSON(t, ts.URL+"/topk?u=5&k=7", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Source != 5 || res.K != 7 {
		t.Errorf("echo fields wrong: %+v", res)
	}
	if len(res.Top) > 7 {
		t.Errorf("topk returned %d items", len(res.Top))
	}
	for _, s := range res.Top {
		if s.Node == 5 {
			t.Errorf("topk must exclude the source: %+v", res.Top)
		}
	}
}

func TestServePair(t *testing.T) {
	ts := newTestServer(t)
	var res struct {
		U     int     `json:"u"`
		V     int     `json:"v"`
		Score float64 `json:"score"`
	}
	resp := getJSON(t, ts.URL+"/pair?u=4&v=4", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Score != 1 {
		t.Errorf("s(4,4) = %v, want 1", res.Score)
	}
}

func TestServeHealthzAndStats(t *testing.T) {
	ts := newTestServer(t)
	var health map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// Serve a couple of queries so the counters move.
	getJSON(t, ts.URL+"/query?u=2", nil)
	getJSON(t, ts.URL+"/query?u=2", nil)

	var stats struct {
		Graph    map[string]any     `json:"graph"`
		Index    map[string]any     `json:"index"`
		Snapshot map[string]any     `json:"snapshot"`
		Engine   map[string]float64 `json:"engine"`
	}
	resp = getJSON(t, ts.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if stats.Graph["nodes"] != float64(150) {
		t.Errorf("stats nodes = %v, want 150", stats.Graph["nodes"])
	}
	if b := stats.Graph["backing"]; b != "heap" {
		t.Errorf("stats graph backing = %v, want heap for a parsed edge list", b)
	}
	if gen := stats.Snapshot["generation"]; gen != float64(0) {
		t.Errorf("stats generation = %v, want 0 before any reload", gen)
	}
	if hubs, _ := stats.Index["hubs"].(float64); hubs <= 0 {
		t.Errorf("stats hubs = %v, want > 0", stats.Index["hubs"])
	}
	if stats.Index["backing"] != "heap" {
		t.Errorf("stats backing = %v, want heap for a streaming load", stats.Index["backing"])
	}
	if stats.Engine["queries"] < 2 {
		t.Errorf("stats queries = %v, want >= 2", stats.Engine["queries"])
	}
	if stats.Engine["cache_hits"] < 1 {
		t.Errorf("stats cache_hits = %v, want >= 1 after repeated query", stats.Engine["cache_hits"])
	}
}

// TestServeMmapBacking boots the server with -mmap and checks queries work
// and /stats reports the mmap backing.
func TestServeMmapBacking(t *testing.T) {
	ts := newTestServerMmap(t, true)
	var res queryResultJSON
	if resp := getJSON(t, ts.URL+"/query?u=2", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if res.Source != 2 {
		t.Errorf("query source = %d, want 2", res.Source)
	}
	var stats struct {
		Index map[string]any `json:"index"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	// On platforms without zero-copy support the open falls back to the
	// streaming loader and reports heap; both are valid outcomes, but the
	// field must be present.
	if b := stats.Index["backing"]; b != "mmap" && b != "heap" {
		t.Errorf("stats backing = %v, want mmap or heap", b)
	}
}

// TestServeMmapRequiresLoadIndex checks -mmap without -loadindex is rejected
// at startup.
func TestServeMmapRequiresLoadIndex(t *testing.T) {
	g, err := prsim.GeneratePowerLawGraph(50, 4, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteEdgeList(f); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := buildServer(config{graphPath: graphPath, mmap: true}); err == nil {
		t.Fatal("expected -mmap without -loadindex to fail")
	}
}

func TestServeErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/query", http.StatusBadRequest},              // missing u
		{"/query?u=abc", http.StatusBadRequest},        // non-integer
		{"/query?u=99999", http.StatusBadRequest},      // out of range
		{"/query?u=1&limit=-2", http.StatusBadRequest}, // bad limit
		{"/topk?u=1&k=0", http.StatusBadRequest},       // bad k
		{"/pair?u=1", http.StatusBadRequest},           // missing v
		{"/pair?u=1&v=99999", http.StatusBadRequest},   // out of range
	}
	for _, c := range cases {
		var body struct {
			Error errorJSON `json:"error"`
		}
		resp := getJSON(t, ts.URL+c.path, &body)
		if resp.StatusCode != c.want {
			t.Errorf("GET %s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
		if body.Error.Code == "" || body.Error.Message == "" {
			t.Errorf("GET %s: incomplete error envelope %+v", c.path, body.Error)
		}
	}
}

// TestServeIndexGraphMismatch checks the startup path rejects an index saved
// for a different graph.
func TestServeIndexGraphMismatch(t *testing.T) {
	dir := t.TempDir()
	small, err := prsim.GeneratePowerLawGraph(50, 4, 2.5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := prsim.GeneratePowerLawGraph(80, 4, 2.5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := prsim.BuildIndex(small, prsim.Options{Epsilon: 0.3, SampleScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatal(err)
	}
	graphPath := filepath.Join(dir, "big.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := buildServer(config{graphPath: graphPath, loadIndex: indexPath}); err == nil {
		t.Fatal("expected index/graph mismatch error")
	}
}

func TestBuildServerNoGraph(t *testing.T) {
	if _, err := buildServer(config{}); err == nil {
		t.Fatal("expected error when neither -graph nor -dataset given")
	}
}

// writeSnapshot builds an index over g and atomically publishes it at path
// (write to temp + rename, the pattern the hot-reload runbook prescribes:
// truncating a file that is currently mapped would fault the readers).
func writeSnapshot(t *testing.T, g *prsim.Graph, path string, seed uint64) {
	t.Helper()
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.3, Seed: seed, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	tmp := path + ".tmp"
	if err := idx.SaveFile(tmp); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatalf("Rename: %v", err)
	}
}

// newSelfContainedServer boots the server from a v3 snapshot alone — no
// graph flag — and returns the server plus the snapshot path for reloads.
func newSelfContainedServer(t *testing.T) (*server, *httptest.Server, *prsim.Graph, string) {
	t.Helper()
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	path := filepath.Join(t.TempDir(), "idx.prsim")
	writeSnapshot(t, g, path, 1)
	srv, err := buildServer(config{
		loadIndex: path,
		workers:   4,
		cacheSize: 16,
		timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("buildServer (self-contained): %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(srv.stop) })
	return srv, ts, g, path
}

// TestServeSelfContained starts the server from a v3 snapshot with no
// edge-list file at all and checks queries and the reported backings.
func TestServeSelfContained(t *testing.T) {
	_, ts, _, _ := newSelfContainedServer(t)
	var res queryResultJSON
	if resp := getJSON(t, ts.URL+"/query?u=3", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if res.Source != 3 || res.Support == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	var stats struct {
		Graph    map[string]any `json:"graph"`
		Index    map[string]any `json:"index"`
		Snapshot map[string]any `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Graph["nodes"] != float64(150) {
		t.Errorf("stats nodes = %v, want 150", stats.Graph["nodes"])
	}
	if sc := stats.Snapshot["self_contained"]; sc != true {
		t.Errorf("stats self_contained = %v, want true", sc)
	}
	// mmap where supported, heap on fallback platforms; either way the graph
	// came out of the snapshot, and both backings must agree with the API.
	if b := stats.Graph["backing"]; b != "mmap" && b != "heap" {
		t.Errorf("graph backing = %v, want mmap or heap", b)
	}
	if b := stats.Index["backing"]; b != "mmap" && b != "heap" {
		t.Errorf("index backing = %v, want mmap or heap", b)
	}
}

// TestServeReload drives POST /reload: the generation increments, queries
// keep working, and a server whose index was built at startup (no snapshot
// file) refuses with 409.
func TestServeReload(t *testing.T) {
	_, ts, g, path := newSelfContainedServer(t)

	// Publish a new snapshot (different seed → genuinely different index).
	writeSnapshot(t, g, path, 2)
	resp, err := http.Post(ts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding reload body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d (%v)", resp.StatusCode, body)
	}
	if body["generation"] != float64(1) {
		t.Errorf("reload generation = %v, want 1", body["generation"])
	}
	var res queryResultJSON
	if qr := getJSON(t, ts.URL+"/query?u=3", &res); qr.StatusCode != http.StatusOK {
		t.Fatalf("query after reload = %d", qr.StatusCode)
	}

	// GET on /reload must not trigger one (admin mutation is POST-only).
	if getResp, err := http.Get(ts.URL + "/reload"); err != nil {
		t.Fatalf("GET /reload: %v", err)
	} else {
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /reload status = %d, want 405", getResp.StatusCode)
		}
	}

	// A built-at-startup server has nothing to reload.
	built, err := buildServer(config{dataset: "DB", timeout: time.Second, epsilon: 0.3, scale: 0.05})
	if err != nil {
		t.Fatalf("buildServer (dataset): %v", err)
	}
	bts := httptest.NewServer(built.handler())
	defer bts.Close()
	resp, err = http.Post(bts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload (built): %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("reload of built index status = %d, want 409", resp.StatusCode)
	}
}

// TestServeReloadUnderLoad is the zero-downtime guarantee: query traffic
// hammers the server while snapshots are republished and reloaded, and not a
// single in-flight request may fail. Run under -race in CI; the swapped-out
// snapshot being unmapped under a live query would also fault outright.
func TestServeReloadUnderLoad(t *testing.T) {
	srv, ts, g, path := newSelfContainedServer(t)

	const clients = 4
	var failures atomic.Int64
	var requests atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			urls := []string{
				ts.URL + "/query?u=" + strconv.Itoa(c*17%150),
				ts.URL + "/topk?u=" + strconv.Itoa(c*31%150) + "&k=5",
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d: status %d", c, resp.StatusCode)
				}
			}
		}(c)
	}

	const reloads = 3
	for r := 1; r <= reloads; r++ {
		writeSnapshot(t, g, path, uint64(r+1))
		resp, err := http.Post(ts.URL+"/reload", "", nil)
		if err != nil {
			t.Fatalf("POST /reload %d: %v", r, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d status = %d", r, resp.StatusCode)
		}
	}
	close(done)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across %d reloads", f, requests.Load(), reloads)
	}
	if requests.Load() == 0 {
		t.Fatal("no requests completed; load generator never ran")
	}
	if gen := srv.def.Generation(); gen != reloads {
		t.Errorf("generation = %d, want %d", gen, reloads)
	}
}

// TestServeWatchReload exercises the mtime watcher: publishing a new snapshot
// triggers a hot swap without any /reload call.
func TestServeWatchReload(t *testing.T) {
	g, err := prsim.GeneratePowerLawGraph(120, 5, 2.5, true, 9)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	path := filepath.Join(t.TempDir(), "watched.prsim")
	writeSnapshot(t, g, path, 1)
	srv, err := buildServer(config{
		loadIndex: path,
		watch:     20 * time.Millisecond,
		timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	go srv.watch(srv.cfg.watch)
	defer close(srv.stop)

	// Rename alone bumps the mtime; give the file a distinct identity too.
	time.Sleep(5 * time.Millisecond)
	writeSnapshot(t, g, path, 2)

	deadline := time.Now().Add(5 * time.Second)
	for srv.def.Generation() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never picked up the republished snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	idx := srv.def.Current()
	if _, err := idx.Query(1); err != nil {
		t.Fatalf("query after watched reload: %v", err)
	}
}

// TestWatchRequiresLoadIndex checks -watch without -loadindex is rejected.
func TestWatchRequiresLoadIndex(t *testing.T) {
	if _, err := buildServer(config{dataset: "DB", watch: time.Second}); err == nil {
		t.Fatal("expected -watch without -loadindex to fail")
	}
}

// TestRenderResultSharedCacheConcurrent locks in the "cached results are
// shared, treat as read-only" contract at the HTTP layer: many goroutines
// render the same cached *Result (plus its TopK and AsSlice views)
// concurrently under -race.
func TestRenderResultSharedCacheConcurrent(t *testing.T) {
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	eng, err := prsim.NewEngine(idx, prsim.EngineOptions{Workers: 4, CacheSize: 8})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()
	shared, err := eng.Query(ctx, 7)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	again, err := eng.Query(ctx, 7)
	if err != nil {
		t.Fatalf("Query (cached): %v", err)
	}
	if shared.Scores() == nil || again.Scores() == nil {
		t.Fatal("results missing scores")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(limit int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				out := renderResult(shared, limit)
				if out.Source != 7 {
					t.Errorf("rendered source = %d, want 7", out.Source)
				}
				_ = shared.TopK(5)
				_ = shared.AsSlice()
			}
		}(i % 3)
	}
	// Concurrent cache hits on the same key, racing the renders above.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if _, err := eng.Query(ctx, 7); err != nil {
					t.Errorf("cached query: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding body: %v", url, err)
		}
	}
	return resp
}

// TestServeRequestPlane drives the per-request knobs over both transports:
// JSON bodies and URL parameters, epsilon echo and clamping, top-k, and
// cache observability.
func TestServeRequestPlane(t *testing.T) {
	ts := newTestServer(t) // build epsilon 0.25
	var def struct {
		queryResultJSON
		Epsilon float64 `json:"epsilon"`
		Clamped bool    `json:"epsilon_clamped"`
		Cached  bool    `json:"cached"`
	}
	resp := postJSON(t, ts.URL+"/query", `{"u": 3}`, &def)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status = %d", resp.StatusCode)
	}
	if def.Source != 3 || def.Epsilon != 0.25 || def.Clamped {
		t.Fatalf("default POST query = source %d epsilon %v clamped %v", def.Source, def.Epsilon, def.Clamped)
	}

	// Coarser per-request epsilon via JSON body.
	var coarse struct {
		queryResultJSON
		Epsilon float64 `json:"epsilon"`
	}
	postJSON(t, ts.URL+"/query", `{"u": 3, "epsilon": 0.75}`, &coarse)
	if coarse.Epsilon != 0.75 {
		t.Fatalf("coarse epsilon echoed as %v, want 0.75", coarse.Epsilon)
	}
	if coarse.Support == 0 {
		t.Fatal("coarse query returned no scores")
	}

	// Clamped request (below build epsilon) over GET parameters.
	var clamped struct {
		Epsilon float64 `json:"epsilon"`
		Clamped bool    `json:"epsilon_clamped"`
	}
	getJSON(t, ts.URL+"/query?u=3&epsilon=0.05", &clamped)
	if !clamped.Clamped || clamped.Epsilon != 0.25 {
		t.Fatalf("clamped GET = epsilon %v clamped %v, want 0.25/true", clamped.Epsilon, clamped.Clamped)
	}

	// Repeating the default request hits the cache and says so.
	var cached struct {
		Cached bool `json:"cached"`
	}
	postJSON(t, ts.URL+"/query", `{"u": 3}`, &cached)
	if !cached.Cached {
		t.Fatal("repeated identical request not served from cache")
	}

	// POST /topk with body knobs.
	var top struct {
		Source  int              `json:"source"`
		K       int              `json:"k"`
		Epsilon float64          `json:"epsilon"`
		Top     []scoredNodeJSON `json:"top"`
	}
	resp = postJSON(t, ts.URL+"/topk", `{"u": 5, "k": 4, "epsilon": 0.5, "timeout_ms": 5000}`, &top)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /topk status = %d", resp.StatusCode)
	}
	if top.Source != 5 || top.K != 4 || top.Epsilon != 0.5 {
		t.Fatalf("topk envelope = %+v", top)
	}
	if len(top.Top) == 0 || len(top.Top) > 4 {
		t.Fatalf("topk returned %d entries", len(top.Top))
	}

	// Batch over JSON body with a shared epsilon.
	var batch struct {
		Results []queryResultJSON `json:"results"`
		Epsilon float64           `json:"epsilon"`
	}
	postJSON(t, ts.URL+"/query", `{"sources": [1, 2], "epsilon": 0.5, "limit": 3}`, &batch)
	if len(batch.Results) != 2 || batch.Epsilon != 0.5 {
		t.Fatalf("batch = %d results epsilon %v", len(batch.Results), batch.Epsilon)
	}
	for _, r := range batch.Results {
		if len(r.Scores) > 3 {
			t.Fatalf("limit not applied: %d scores", len(r.Scores))
		}
	}

	// Bad requests: invalid epsilon (400), malformed body (400), unknown
	// field (400).
	for _, tc := range []struct{ url, body string }{
		{"/query", `{"u": 3, "epsilon": 2}`},
		{"/query", `{"u": 3,`},
		{"/query", `{"u": 3, "epsilom": 0.5}`},
	} {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q status = %d, want 400", tc.url, tc.body, resp.StatusCode)
		}
	}
}

// TestWriteQueryErrorOverloaded pins the HTTP contract of load shedding: the
// sentinel maps to 429 with a Retry-After hint. (Deterministic shedding
// itself is exercised at the engine layer, where the worker can be parked.)
func TestWriteQueryErrorOverloaded(t *testing.T) {
	rec := httptest.NewRecorder()
	writeQueryError(rec, fmt.Errorf("engine: query from source 3: %w", prsim.ErrOverloaded))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	var body struct {
		Error errorJSON `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != codeOverloaded {
		t.Fatalf("error body = %q (%v)", rec.Body.String(), err)
	}
	if body.Error.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want positive fallback", body.Error.RetryAfterMS)
	}
}

// TestServeStatsRequestPlane checks /stats exposes the admission and
// coalescing counters plus the background-verify block.
func TestServeStatsRequestPlane(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/query?u=1", nil)
	var stats struct {
		Engine struct {
			Workers    int   `json:"workers"`
			MaxQueue   int   `json:"max_queue"`
			QueueDepth int64 `json:"queue_depth"`
			Queries    int64 `json:"queries"`
			Coalesced  int64 `json:"coalesced"`
			Shed       int64 `json:"shed"`
		} `json:"engine"`
		Verify struct {
			Runs int64 `json:"runs"`
		} `json:"verify"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Engine.MaxQueue <= 0 {
		t.Fatalf("max_queue = %d, want positive default", stats.Engine.MaxQueue)
	}
	if stats.Engine.Queries == 0 {
		t.Fatal("queries counter missing")
	}
	if stats.Engine.Shed != 0 || stats.Engine.QueueDepth != 0 {
		t.Fatalf("idle server shows shed=%d depth=%d", stats.Engine.Shed, stats.Engine.QueueDepth)
	}
	if stats.Verify.Runs != 0 {
		t.Fatalf("verify runs = %d before any verify", stats.Verify.Runs)
	}
}

// TestServeBackgroundVerify runs the -verifyevery verification against a
// real snapshot — success first, then after corrupting the file on disk the
// periodic check must record (and expose) the failure while the server keeps
// serving off the already-validated mapping.
func TestServeBackgroundVerify(t *testing.T) {
	dir := t.TempDir()
	g, err := prsim.GeneratePowerLawGraph(120, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	srv, err := buildServer(config{
		loadIndex:   indexPath, // self-contained open: graph from the file
		workers:     2,
		cacheSize:   4,
		timeout:     10 * time.Second,
		verifyEvery: time.Hour, // loop not started in tests; we tick by hand
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	srv.verifySnapshot()
	var stats struct {
		Verify struct {
			Runs       int64   `json:"runs"`
			RolledBack int64   `json:"rolled_back"`
			LastOK     bool    `json:"last_ok"`
			LastError  string  `json:"last_error"`
			Every      float64 `json:"every_seconds"`
		} `json:"verify"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Verify.Runs != 1 || !stats.Verify.LastOK {
		t.Fatalf("after clean verify: %+v", stats.Verify)
	}
	if stats.Verify.Every != 3600 {
		t.Fatalf("every_seconds = %v, want 3600", stats.Verify.Every)
	}

	// Flip one byte in the middle of the section payload; for mmap-backed
	// snapshots the next verify reads the mutated page, for stream-backed
	// ones Verify is a no-op and the rest of this test does not apply.
	if srv.def.Current().Backing() != "mmap" {
		t.Skip("platform lacks zero-copy snapshots; background verify has nothing to re-check")
	}
	raw, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(indexPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	srv.verifySnapshot()
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Verify.Runs != 2 || stats.Verify.LastOK {
		t.Fatalf("after corruption: %+v", stats.Verify)
	}
	if stats.Verify.LastError == "" {
		t.Fatal("corruption not reported in last_error")
	}
	// The file is corrupt in place, so the automatic rollback's re-open finds
	// the same bad bytes and must NOT swap: keep serving the last-good pages.
	if stats.Verify.RolledBack != 0 {
		t.Fatalf("rolled_back = %d, want 0 (re-opened file is still corrupt)", stats.Verify.RolledBack)
	}
	// Queries still answer off the mapping (the flipped byte may perturb
	// scores but the structural validation done at open keeps them safe).
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after corruption = %d", resp.StatusCode)
	}
}

// TestServeReloadKeepsWarmCache pins the reload-aware cache seam end to end:
// reloading an unchanged snapshot re-keys the result cache instead of
// purging it, so the first post-reload repeat of a cached query is still a
// cache hit.
func TestServeReloadKeepsWarmCache(t *testing.T) {
	ts := newTestServer(t)
	var first struct {
		Cached bool `json:"cached"`
	}
	getJSON(t, ts.URL+"/query?u=3", &first)
	if first.Cached {
		t.Fatal("first query claims to be cached")
	}
	resp, err := http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	var stats struct {
		Engine struct {
			CacheReuses  int64 `json:"cache_reuses"`
			CacheEntries int   `json:"cache_entries"`
		} `json:"engine"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Engine.CacheReuses != 1 {
		t.Fatalf("cache_reuses = %d after same-file reload, want 1", stats.Engine.CacheReuses)
	}
	if stats.Engine.CacheEntries == 0 {
		t.Fatal("cache purged despite unchanged snapshot")
	}
	var again struct {
		Cached bool `json:"cached"`
	}
	getJSON(t, ts.URL+"/query?u=3", &again)
	if !again.Cached {
		t.Fatal("post-reload repeat of a cached query missed the kept cache")
	}
}

// TestServeParallelKnob exercises the intra-query parallelism request knob on
// both transports and the determinism contract through HTTP: answers must be
// identical at every parallelism level (scores are bit-identical, and JSON
// float64 encoding round-trips exactly).
func TestServeParallelKnob(t *testing.T) {
	ts := newTestServer(t)
	type queryResp struct {
		Support int              `json:"support"`
		Scores  []scoredNodeJSON `json:"scores"`
	}
	var serial, parallel queryResp
	getJSON(t, ts.URL+"/query?u=3&parallel=1&nocache=1", &serial)
	getJSON(t, ts.URL+"/query?u=3&parallel=4&nocache=1", &parallel)
	if serial.Support == 0 || serial.Support != parallel.Support {
		t.Fatalf("support %d vs %d", serial.Support, parallel.Support)
	}
	for i := range serial.Scores {
		if serial.Scores[i] != parallel.Scores[i] {
			t.Fatalf("entry %d differs across parallelism: %+v vs %+v", i, serial.Scores[i], parallel.Scores[i])
		}
	}

	body := strings.NewReader(`{"u": 3, "parallelism": 4, "no_cache": true}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var post queryResp
	if err := json.NewDecoder(resp.Body).Decode(&post); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || post.Support != serial.Support {
		t.Fatalf("POST parallelism: status %d support %d", resp.StatusCode, post.Support)
	}

	resp, err = http.Get(ts.URL + "/query?u=3&parallel=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad parallel value: status %d, want 400", resp.StatusCode)
	}

	var stats struct {
		Engine struct {
			ParallelDefault int   `json:"parallel_default"`
			ChunksExecuted  int64 `json:"chunks_executed"`
			ChunksMerged    int64 `json:"chunks_merged"`
		} `json:"engine"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Engine.ChunksExecuted == 0 || stats.Engine.ChunksExecuted != stats.Engine.ChunksMerged {
		t.Fatalf("chunk counters executed=%d merged=%d", stats.Engine.ChunksExecuted, stats.Engine.ChunksMerged)
	}
}

// TestServeVerifyRollback drives the automatic-recovery path: the serving
// mapping is corrupted in place, but the good bytes are republished at the
// path (write + rename, so the path and the mapped inode diverge). The next
// background verification must detect the corruption, re-open the path,
// verify the fresh mapping, and swap it in — bumping the generation and the
// rolled_back counter — after which verification is clean again.
func TestServeVerifyRollback(t *testing.T) {
	dir := t.TempDir()
	g, err := prsim.GeneratePowerLawGraph(120, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	idx, err := prsim.BuildIndex(g, prsim.Options{Epsilon: 0.25, Seed: 3, SampleScale: 0.05})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	indexPath := filepath.Join(dir, "idx.prsim")
	if err := idx.SaveFile(indexPath); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	srv, err := buildServer(config{
		loadIndex:   indexPath,
		workers:     2,
		cacheSize:   4,
		timeout:     10 * time.Second,
		verifyEvery: time.Hour,
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	if srv.def.Current().Backing() != "mmap" {
		t.Skip("platform lacks zero-copy snapshots; nothing to corrupt in place")
	}
	genBefore := srv.def.Generation()

	good, err := os.ReadFile(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the mapped inode in place (no truncation: the pages are live),
	// then republish the good bytes atomically. The path now holds a healthy
	// file while the serving mapping reads the flipped byte.
	f, err := os.OpenFile(indexPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{good[len(good)/2] ^ 0xff}, int64(len(good)/2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := indexPath + ".tmp"
	if err := os.WriteFile(tmp, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, indexPath); err != nil {
		t.Fatal(err)
	}

	srv.verifySnapshot()
	var stats struct {
		Verify struct {
			Runs       int64 `json:"runs"`
			RolledBack int64 `json:"rolled_back"`
			LastOK     bool  `json:"last_ok"`
		} `json:"verify"`
		Snapshot struct {
			Generation uint64 `json:"generation"`
		} `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Verify.LastOK {
		t.Fatal("corrupted mapping passed verification")
	}
	if stats.Verify.RolledBack != 1 {
		t.Fatalf("rolled_back = %d, want 1", stats.Verify.RolledBack)
	}
	if stats.Snapshot.Generation != genBefore+1 {
		t.Fatalf("generation = %d, want %d (rollback must swap)", stats.Snapshot.Generation, genBefore+1)
	}

	// The rolled-back snapshot serves queries and verifies clean.
	var q struct {
		Support int `json:"support"`
	}
	getJSON(t, ts.URL+"/query?u=3", &q)
	if q.Support == 0 {
		t.Fatal("query against rolled-back snapshot returned nothing")
	}
	srv.verifySnapshot()
	getJSON(t, ts.URL+"/stats", &stats)
	if !stats.Verify.LastOK {
		t.Fatal("rolled-back snapshot failed verification")
	}
	if stats.Verify.RolledBack != 1 {
		t.Fatalf("rolled_back moved to %d after clean verify", stats.Verify.RolledBack)
	}
}
