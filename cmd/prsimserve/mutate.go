// Streaming edge mutations: POST /v1/graphs/{graph}/edges applies a batch of
// edge insertions/deletions to the serving index incrementally (recomputing
// only the hubs the batch can perturb), persists the successor next to the
// graph's snapshot — as a delta file against the on-disk base, or as a full
// rewrite once the accumulated delta grows past -rewriteratio of the base —
// and hot-swaps every shard onto it without dropping in-flight requests.
// Publishing keeps disk ahead of memory: a batch whose publish fails is not
// swapped in, so a restart never silently loses an acknowledged mutation.
package main

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"

	"prsim"
)

// deltaSuffix names the published delta next to its base snapshot:
// <snapshot>.delta. openSnapshotAuto layers it back over the base at open.
const deltaSuffix = ".delta"

// mutator is one graph's mutation pipeline state. mu serializes the
// apply→publish→swap sequence with reloads of the same graph (queries never
// take it); statsMu guards the counters below it so /stats never blocks on a
// long apply.
type mutator struct {
	mu       sync.Mutex
	path     string // on-disk snapshot ("" = in-memory only, nothing to publish)
	baseGens prsim.SnapshotGens
	baseOK   bool // base file carries v4 generation stamps (delta-capable)

	statsMu          sync.Mutex
	batches          int64
	updates          int64
	hubsRecomputed   int64
	deltasPublished  int64
	fullRewrites     int64
	lastFractionHubs float64
	lastApplySeconds float64
	lastDeltaBytes   uint64
}

// refreshBase re-reads the on-disk base snapshot's generation stamps, the
// gens future deltas are written against. Callers hold m.mu (or own m
// exclusively). A pre-v4 or unreadable base simply disables delta publishing
// until the first full rewrite replaces it.
func (m *mutator) refreshBase() {
	m.baseOK = false
	if m.path == "" {
		return
	}
	gens, ok, err := prsim.SnapshotFileGens(m.path)
	if err != nil || !ok {
		return
	}
	m.baseGens, m.baseOK = gens, true
}

func (m *mutator) statsJSON() map[string]any {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return map[string]any{
		"batches":            m.batches,
		"updates":            m.updates,
		"hubs_recomputed":    m.hubsRecomputed,
		"deltas_published":   m.deltasPublished,
		"full_rewrites":      m.fullRewrites,
		"last_fraction_hubs": m.lastFractionHubs,
		"last_apply_seconds": m.lastApplySeconds,
		"last_delta_bytes":   m.lastDeltaBytes,
	}
}

// mutatorFor returns the named graph's mutator, creating it on first use. The
// default graph publishes to the boot snapshot only when it is served
// self-contained — with a separate -graph file the snapshot cannot be
// round-tripped through a rewrite, so its updates stay in memory.
func (s *server) mutatorFor(name string) *mutator {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	if m, ok := s.mutators[name]; ok {
		return m
	}
	m := &mutator{}
	if name == prsim.DefaultGraph && s.g == nil {
		m.path = s.cfg.loadIndex
	}
	m.refreshBase()
	s.mutators[name] = m
	return m
}

// mountMutator (re)binds a runtime-mounted graph's mutator to its snapshot
// path; dropMutator forgets an unmounted graph's pipeline state.
func (s *server) mountMutator(name, path string) {
	m := &mutator{path: path}
	m.refreshBase()
	s.mutMu.Lock()
	s.mutators[name] = m
	s.mutMu.Unlock()
}

func (s *server) dropMutator(name string) {
	s.mutMu.Lock()
	delete(s.mutators, name)
	s.mutMu.Unlock()
}

// rewriteRatio returns the delta-size threshold (as a fraction of the base
// snapshot size) past which a publish rewrites the full snapshot instead of
// shipping a delta. Zero (tests constructing config directly) means the flag
// default.
func (s *server) rewriteRatio() float64 {
	if s.cfg.rewriteRatio <= 0 {
		return 0.5
	}
	return s.cfg.rewriteRatio
}

// openSnapshotAuto opens a self-contained snapshot, layering the published
// delta over it when one exists next to the file. A delta that no longer
// applies to the base (e.g. left behind by an interrupted full rewrite) is
// skipped with a log line — the base alone is always a consistent, if older,
// serving state.
func openSnapshotAuto(path string) (*prsim.Index, error) {
	deltaPath := path + deltaSuffix
	if _, err := os.Stat(deltaPath); err == nil {
		idx, err := prsim.OpenSnapshotDelta(path, deltaPath)
		if err == nil {
			return idx, nil
		}
		log.Printf("prsimserve: delta %s does not apply to %s (%v); serving the base snapshot", deltaPath, path, err)
	}
	return prsim.OpenSnapshot(path, nil)
}

// writeFileAtomic writes through a temp file and renames it over path, so
// readers (and a crash) only ever observe the old or the new complete file.
func writeFileAtomic(path string, write func(tmp string) error) error {
	tmp := path + ".tmp"
	if err := write(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// publish persists an updated index next to the graph's snapshot and reports
// how: "delta" (shipped only the sections the update lineage rewrote since
// the base), "rewrite" (full snapshot replaced, becoming the next delta
// base), or "memory" (no on-disk backing to publish to). Caller holds m.mu.
func (s *server) publish(m *mutator, idx *prsim.Index) (string, uint64, error) {
	if m.path == "" {
		return "memory", 0, nil
	}
	if m.baseOK {
		size, err := idx.DeltaSize(m.baseGens)
		if err == nil {
			if st, serr := os.Stat(m.path); serr == nil && float64(size) <= s.rewriteRatio()*float64(st.Size()) {
				err := writeFileAtomic(m.path+deltaSuffix, func(tmp string) error {
					return idx.WriteDeltaFile(tmp, m.baseGens)
				})
				if err != nil {
					return "", 0, err
				}
				m.statsMu.Lock()
				m.deltasPublished++
				m.lastDeltaBytes = size
				m.statsMu.Unlock()
				return "delta", size, nil
			}
		}
		// DeltaSize errors (lineage drift after an external republish) fall
		// through to a full rewrite, which re-bases the pipeline.
	}
	if err := writeFileAtomic(m.path, func(tmp string) error { return idx.SaveFile(tmp) }); err != nil {
		return "", 0, err
	}
	// The delta (if any) described the replaced base; the new file carries
	// the whole state and becomes the base of future deltas.
	os.Remove(m.path + deltaSuffix)
	m.baseGens, m.baseOK = idx.Gens(), true
	m.statsMu.Lock()
	m.fullRewrites++
	m.lastDeltaBytes = 0
	m.statsMu.Unlock()
	if m.path == s.cfg.loadIndex {
		// The watcher polls this file; record the rewrite's identity so it
		// does not immediately re-open the state it is already serving.
		s.reloadMu.Lock()
		s.watchedMod, s.watchedSize = statWatched(m.path)
		s.reloadMu.Unlock()
	}
	return "rewrite", 0, nil
}

// edgeJSON is one mutation of the POST /v1/graphs/{graph}/edges body.
type edgeJSON struct {
	From   int  `json:"from"`
	To     int  `json:"to"`
	Delete bool `json:"delete,omitempty"`
}

// edgesBodyJSON is the mutation batch body.
type edgesBodyJSON struct {
	Updates []edgeJSON `json:"updates"`
}

func (s *server) handleEdges(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	if name == "" {
		name = prsim.DefaultGraph
	}
	var body edgesBodyJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if len(body.Updates) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "at least one update is required (JSON updates array)")
		return
	}
	sv, err := s.reg.Get(name)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if sv.Remote() {
		writeError(w, http.StatusConflict, codeConflict,
			fmt.Sprintf("graph %q is remote: apply edge updates on its shard hosts", name))
		return
	}
	ups := make([]prsim.EdgeUpdate, len(body.Updates))
	for i, e := range body.Updates {
		ups[i] = prsim.EdgeUpdate{From: e.From, To: e.To, Delete: e.Delete}
	}

	m := s.mutatorFor(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := sv.Current()
	nidx, st, err := cur.ApplyUpdatesOpts(ups, prsim.UpdateOptions{DriftBudget: s.cfg.driftBudget})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	published, deltaBytes, err := s.publish(m, nidx)
	if err != nil {
		// Disk leads memory: an unpublishable batch is not swapped in, so an
		// acknowledged mutation can never be lost by a restart.
		writeError(w, http.StatusInternalServerError, codeInternal,
			fmt.Sprintf("update not applied: publishing failed: %v", err))
		return
	}
	if err := sv.Update(nidx, st); err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, fmt.Sprintf("swap failed: %v", err))
		return
	}
	m.statsMu.Lock()
	m.batches++
	m.updates += int64(st.Updates)
	m.hubsRecomputed += int64(st.HubsRecomputed)
	m.lastFractionHubs = st.FractionHubs
	m.lastApplySeconds = st.TotalSeconds
	m.statsMu.Unlock()
	log.Printf("prsimserve: graph %q applied %d edge update(s): %d/%d hubs recomputed (%.1f%%) in %.3fs, published as %s",
		name, st.Updates, st.HubsRecomputed, st.HubsTotal, 100*st.FractionHubs, st.TotalSeconds, published)
	writeJSON(w, map[string]any{
		"status":             "applied",
		"graph":              name,
		"updates":            st.Updates,
		"generation":         nidx.Generation(),
		"hubs_total":         st.HubsTotal,
		"hubs_recomputed":    st.HubsRecomputed,
		"hubs_skipped_drift": st.HubsSkippedDrift,
		"fraction_hubs":      st.FractionHubs,
		"entries_rewritten":  st.EntriesRewritten,
		"entries_carried":    st.EntriesCarried,
		"apply_seconds":      st.TotalSeconds,
		"published":          published,
		"delta_bytes":        deltaBytes,
	})
}

// admin wraps an admin-plane handler with bearer-token auth when -admintoken
// is set. Without the flag the admin plane stays open (the pre-auth
// behavior); the check is constant-time so the token cannot be probed
// byte-by-byte.
func (s *server) admin(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.adminToken == "" {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.cfg.adminToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="prsimserve admin"`)
			writeError(w, http.StatusUnauthorized, codeUnauthorized,
				"admin endpoints require the -admintoken bearer token")
			return
		}
		h(w, r)
	}
}
