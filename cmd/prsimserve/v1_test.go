package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prsim"
)

// newV1Server boots a self-contained server with the given shard count and
// returns it with its snapshot path (for mounting more graphs and reloading).
func newV1Server(t *testing.T, shards int) (*server, *httptest.Server, *prsim.Graph, string) {
	t.Helper()
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	path := filepath.Join(t.TempDir(), "idx.prsim")
	writeSnapshot(t, g, path, 1)
	srv, err := buildServer(config{
		loadIndex: path,
		shards:    shards,
		workers:   2,
		cacheSize: 16,
		timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(srv.stop) })
	return srv, ts, g, path
}

// TestV1Routes drives the graph-scoped /v1 surface end to end and checks the
// deprecation contract: legacy routes announce their successor, /v1 routes do
// not.
func TestV1Routes(t *testing.T) {
	_, ts, _, _ := newV1Server(t, 2)

	var res queryResultJSON
	resp := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3", &res)
	if resp.StatusCode != http.StatusOK || res.Source != 3 || res.Support == 0 {
		t.Fatalf("v1 query = %d %+v", resp.StatusCode, res)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("v1 route carries a Deprecation header")
	}

	// Legacy alias answers identically but flags the migration.
	var legacy queryResultJSON
	lresp := getJSON(t, ts.URL+"/query?u=3", &legacy)
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("legacy query = %d", lresp.StatusCode)
	}
	if lresp.Header.Get("Deprecation") != "true" {
		t.Error("legacy route missing Deprecation header")
	}
	if link := lresp.Header.Get("Link"); !strings.Contains(link, "/v1/graphs/default/query") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("legacy Link header = %q", link)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(legacy)
	if string(a) != string(b) {
		t.Errorf("legacy and v1 answers diverge:\n%s\n%s", a, b)
	}

	// Batch, top-k, pair, stats, list, healthz.
	var batch struct {
		Results []queryResultJSON `json:"results"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=1&u=7", &batch); r.StatusCode != http.StatusOK || len(batch.Results) != 2 {
		t.Fatalf("v1 batch = %d %d results", r.StatusCode, len(batch.Results))
	}
	var top struct {
		Source int              `json:"source"`
		Top    []scoredNodeJSON `json:"top"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/topk?u=5&k=4", &top); r.StatusCode != http.StatusOK || top.Source != 5 || len(top.Top) == 0 {
		t.Fatalf("v1 topk = %d %+v", r.StatusCode, top)
	}
	var pair struct {
		Score float64 `json:"score"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/pair?u=4&v=4", &pair); r.StatusCode != http.StatusOK || pair.Score != 1 {
		t.Fatalf("v1 pair = %d %+v", r.StatusCode, pair)
	}
	var stats struct {
		Name   string         `json:"name"`
		Engine map[string]any `json:"engine"`
		Shards []map[string]any
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/stats", &stats); r.StatusCode != http.StatusOK || stats.Name != "default" {
		t.Fatalf("v1 stats = %d %+v", r.StatusCode, stats)
	}
	if stats.Engine["shards"] != float64(2) {
		t.Errorf("stats shards = %v, want 2", stats.Engine["shards"])
	}
	var list struct {
		Graphs []map[string]any `json:"graphs"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs", &list); r.StatusCode != http.StatusOK || len(list.Graphs) != 1 {
		t.Fatalf("v1 list = %d %+v", r.StatusCode, list)
	}
	if list.Graphs[0]["name"] != "default" || list.Graphs[0]["shards"] != float64(2) {
		t.Errorf("v1 list entry = %+v", list.Graphs[0])
	}
	var health map[string]any
	if r := getJSON(t, ts.URL+"/v1/healthz", &health); r.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("v1 healthz = %d %v", r.StatusCode, health)
	}
	var server struct {
		Graphs map[string]any `json:"graphs"`
	}
	if r := getJSON(t, ts.URL+"/v1/stats", &server); r.StatusCode != http.StatusOK || len(server.Graphs) != 1 {
		t.Fatalf("v1 server stats = %d %+v", r.StatusCode, server)
	}
}

// TestV1MultiSourceTopK checks the scatter-gather merge endpoint: several
// sources, one global top-k, deterministic across shard counts.
func TestV1MultiSourceTopK(t *testing.T) {
	bodies := make(map[int]string)
	for _, shards := range []int{1, 4} {
		_, ts, _, _ := newV1Server(t, shards)
		resp, err := http.Get(ts.URL + "/v1/graphs/default/topk?u=5&u=9&u=17&k=6")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%d shards: status %d (%s)", shards, resp.StatusCode, raw)
		}
		bodies[shards] = string(raw)

		var out struct {
			Sources []int            `json:"sources"`
			K       int              `json:"k"`
			Top     []scoredNodeJSON `json:"top"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Sources) != 3 || out.K != 6 || len(out.Top) == 0 || len(out.Top) > 6 {
			t.Fatalf("%d shards: merged topk = %+v", shards, out)
		}
		for i := 1; i < len(out.Top); i++ {
			prev, cur := out.Top[i-1], out.Top[i]
			if cur.Score > prev.Score || (cur.Score == prev.Score && cur.Node < prev.Node) {
				t.Fatalf("%d shards: merged topk out of order at %d: %+v", shards, i, out.Top)
			}
		}
	}
	// Same snapshot seed, same sources: the merged answer must be
	// byte-identical regardless of how many shards computed it.
	if bodies[1] != bodies[4] {
		t.Errorf("merged topk differs across shard counts:\n%s\n%s", bodies[1], bodies[4])
	}
}

// TestV1ShardedBatchParity pins the bit-transparency of sharding at the HTTP
// layer: the same batch query against 1-shard and 4-shard servers over the
// same snapshot must render byte-identically.
func TestV1ShardedBatchParity(t *testing.T) {
	const path = "/v1/graphs/default/query?u=0&u=1&u=42&u=99&u=149&u=42&epsilon=0.5&nocache=1"
	bodies := make(map[int]string)
	for _, shards := range []int{1, 4} {
		_, ts, _, _ := newV1Server(t, shards)
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%d shards: status %d (%s)", shards, resp.StatusCode, raw)
		}
		bodies[shards] = string(raw)
	}
	if bodies[1] != bodies[4] {
		t.Errorf("batch answers differ across shard counts:\n%s\n%s", bodies[1], bodies[4])
	}
}

// TestV1GraphResolution covers the routing errors: unknown graph names 404
// with the typed code, and a body graph contradicting the path is a client
// error.
func TestV1GraphResolution(t *testing.T) {
	_, ts, _, _ := newV1Server(t, 1)

	var envelope struct {
		Error errorJSON `json:"error"`
	}
	resp := getJSON(t, ts.URL+"/v1/graphs/nope/query?u=1", &envelope)
	if resp.StatusCode != http.StatusNotFound || envelope.Error.Code != codeUnknownGraph {
		t.Fatalf("unknown graph = %d %+v", resp.StatusCode, envelope.Error)
	}
	resp = getJSON(t, ts.URL+"/v1/graphs/nope/stats", &envelope)
	if resp.StatusCode != http.StatusNotFound || envelope.Error.Code != codeUnknownGraph {
		t.Fatalf("unknown graph stats = %d %+v", resp.StatusCode, envelope.Error)
	}

	r := postJSON(t, ts.URL+"/v1/graphs/default/query", `{"u": 1, "graph": "other"}`, &envelope)
	if r.StatusCode != http.StatusBadRequest || envelope.Error.Code != codeInvalidArgument {
		t.Fatalf("graph mismatch = %d %+v", r.StatusCode, envelope.Error)
	}

	// The graph knob also routes legacy and body-only requests.
	var res queryResultJSON
	if r := postJSON(t, ts.URL+"/query", `{"u": 1, "graph": "default"}`, &res); r.StatusCode != http.StatusOK || res.Source != 1 {
		t.Fatalf("legacy body graph = %d %+v", r.StatusCode, res)
	}
	resp = getJSON(t, ts.URL+"/query?u=1&graph=nope", &envelope)
	if resp.StatusCode != http.StatusNotFound || envelope.Error.Code != codeUnknownGraph {
		t.Fatalf("legacy unknown graph = %d %+v", resp.StatusCode, envelope.Error)
	}
}

// TestV1ClassKnob checks the admission-class knob on both transports and its
// per-class stats accounting; an unknown class is a client error.
func TestV1ClassKnob(t *testing.T) {
	_, ts, _, _ := newV1Server(t, 1)

	var res queryResultJSON
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3&class=batch", &res); r.StatusCode != http.StatusOK {
		t.Fatalf("class=batch query = %d", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/default/query", `{"u": 4, "class": "interactive"}`, &res); r.StatusCode != http.StatusOK {
		t.Fatalf("class=interactive POST = %d", r.StatusCode)
	}

	var stats struct {
		Classes struct {
			Interactive map[string]float64 `json:"interactive"`
			Batch       map[string]float64 `json:"batch"`
		} `json:"classes"`
	}
	getJSON(t, ts.URL+"/v1/graphs/default/stats", &stats)
	if stats.Classes.Batch["queries"] < 1 {
		t.Errorf("batch queries = %v, want >= 1", stats.Classes.Batch["queries"])
	}
	if stats.Classes.Interactive["queries"] < 1 {
		t.Errorf("interactive queries = %v, want >= 1", stats.Classes.Interactive["queries"])
	}

	var envelope struct {
		Error errorJSON `json:"error"`
	}
	resp := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3&class=bulk", &envelope)
	if resp.StatusCode != http.StatusBadRequest || envelope.Error.Code != codeInvalidArgument {
		t.Fatalf("bad class = %d %+v", resp.StatusCode, envelope.Error)
	}
}

// TestV1MountUnmount drives the admin plane: mount a second graph from a
// snapshot, query and reload it, then unmount it; the default graph is
// protected, and admin mistakes get typed errors.
func TestV1MountUnmount(t *testing.T) {
	_, ts, _, _ := newV1Server(t, 1)

	// A second, structurally different graph published as a snapshot.
	g2, err := prsim.GeneratePowerLawGraph(90, 5, 2.5, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "second.prsim")
	writeSnapshot(t, g2, path2, 3)

	put := func(url, body string) (*http.Response, map[string]any) {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		return resp, out
	}

	resp, body := put(ts.URL+"/v1/graphs/second", fmt.Sprintf(`{"snapshot": %q, "shards": 2}`, path2))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mount = %d %v", resp.StatusCode, body)
	}
	if body["nodes"] != float64(90) || body["shards"] != float64(2) {
		t.Errorf("mount body = %v", body)
	}

	var list struct {
		Graphs []map[string]any `json:"graphs"`
	}
	getJSON(t, ts.URL+"/v1/graphs", &list)
	if len(list.Graphs) != 2 {
		t.Fatalf("list after mount = %+v", list.Graphs)
	}

	var res queryResultJSON
	if r := getJSON(t, ts.URL+"/v1/graphs/second/query?u=3", &res); r.StatusCode != http.StatusOK || res.Support == 0 {
		t.Fatalf("query on mounted graph = %d %+v", r.StatusCode, res)
	}

	// Reload the runtime-mounted graph: republish and POST reload.
	writeSnapshot(t, g2, path2, 4)
	var reload map[string]any
	if r := postJSON(t, ts.URL+"/v1/graphs/second/reload", "", &reload); r.StatusCode != http.StatusOK || reload["generation"] != float64(1) {
		t.Fatalf("reload mounted graph = %d %v", r.StatusCode, reload)
	}

	// Admin mistakes: duplicate mount, bad name, missing snapshot, unmounting
	// the default graph.
	if resp, _ := put(ts.URL+"/v1/graphs/second", fmt.Sprintf(`{"snapshot": %q}`, path2)); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate mount = %d, want 409", resp.StatusCode)
	}
	if resp, _ := put(ts.URL+"/v1/graphs/bad%2Fname", `{"snapshot": "x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad name mount = %d, want 400", resp.StatusCode)
	}
	if resp, _ := put(ts.URL+"/v1/graphs/third", `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing snapshot mount = %d, want 400", resp.StatusCode)
	}
	del := func(url string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := del(ts.URL + "/v1/graphs/default"); resp.StatusCode != http.StatusConflict {
		t.Errorf("unmount default = %d, want 409", resp.StatusCode)
	}
	if resp := del(ts.URL + "/v1/graphs/second"); resp.StatusCode != http.StatusOK {
		t.Errorf("unmount second = %d, want 200", resp.StatusCode)
	}
	if resp := del(ts.URL + "/v1/graphs/second"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double unmount = %d, want 404", resp.StatusCode)
	}
	var env struct {
		Error errorJSON `json:"error"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/second/query?u=1", &env); r.StatusCode != http.StatusNotFound || env.Error.Code != codeUnknownGraph {
		t.Fatalf("query after unmount = %d %+v", r.StatusCode, env.Error)
	}
}

// TestServeMultiGraphReloadUnderLoad is the multi-tenant zero-downtime
// guarantee: clients hammer two independently mounted graphs while both are
// republished and reloaded; not a single request may fail, and each graph
// ends at the expected generation. Run under -race in CI.
func TestServeMultiGraphReloadUnderLoad(t *testing.T) {
	srv, ts, g, path := newV1Server(t, 2)

	g2, err := prsim.GeneratePowerLawGraph(90, 5, 2.5, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(t.TempDir(), "second.prsim")
	writeSnapshot(t, g2, path2, 3)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/second",
		strings.NewReader(fmt.Sprintf(`{"snapshot": %q, "shards": 2}`, path2)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("mount second = %d", resp.StatusCode)
	}

	const clients = 4
	var failures, requests atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			urls := []string{
				ts.URL + "/v1/graphs/default/query?u=" + strconv.Itoa(c*17%150),
				ts.URL + "/v1/graphs/second/topk?u=" + strconv.Itoa(c*31%90) + "&k=5",
				ts.URL + "/v1/graphs/second/query?u=" + strconv.Itoa(c*13%90) + "&class=batch",
			}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d: status %d", c, resp.StatusCode)
				}
			}
		}(c)
	}

	const reloads = 2
	for r := 1; r <= reloads; r++ {
		writeSnapshot(t, g, path, uint64(r+10))
		writeSnapshot(t, g2, path2, uint64(r+20))
		for _, target := range []string{"/v1/graphs/default/reload", "/v1/graphs/second/reload"} {
			resp, err := http.Post(ts.URL+target, "", nil)
			if err != nil {
				t.Fatalf("POST %s: %v", target, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s status = %d", target, resp.StatusCode)
			}
		}
	}
	close(done)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across %d dual reloads", f, requests.Load(), reloads)
	}
	if requests.Load() == 0 {
		t.Fatal("no requests completed; load generator never ran")
	}
	if gen := srv.def.Generation(); gen != reloads {
		t.Errorf("default generation = %d, want %d", gen, reloads)
	}
	second, err := srv.reg.Get("second")
	if err != nil {
		t.Fatal(err)
	}
	if gen := second.Generation(); gen != reloads {
		t.Errorf("second generation = %d, want %d", gen, reloads)
	}
}

// TestHTTPSurfaceSnapshot pins the HTTP surface: the exact route patterns,
// their deprecation successors, and the error-code vocabulary. Adding a route
// or code is fine — update the snapshot deliberately; changing or removing
// one is an API break this test is meant to catch.
func TestHTTPSurfaceSnapshot(t *testing.T) {
	srv, _, _, _ := newV1Server(t, 1)

	want := []string{
		"GET /v1/graphs/{graph}/query",
		"POST /v1/graphs/{graph}/query",
		"GET /v1/graphs/{graph}/topk",
		"POST /v1/graphs/{graph}/topk",
		"GET /v1/graphs/{graph}/pair",
		"GET /v1/graphs/{graph}/stats",
		"GET /v1/graphs/{graph}/health",
		"POST /v1/graphs/{graph}/edges",
		"POST /v1/graphs/{graph}/reload",
		"GET /v1/graphs",
		"PUT /v1/graphs/{graph}",
		"DELETE /v1/graphs/{graph}",
		"GET /v1/stats",
		"GET /v1/healthz",
		"GET /query -> /v1/graphs/default/query",
		"POST /query -> /v1/graphs/default/query",
		"GET /topk -> /v1/graphs/default/topk",
		"POST /topk -> /v1/graphs/default/topk",
		"GET /pair -> /v1/graphs/default/pair",
		"POST /reload -> /v1/graphs/default/reload",
		"GET /stats -> /v1/graphs/default/stats",
		"GET /healthz",
	}
	var got []string
	for _, rt := range srv.routes() {
		line := rt.pattern
		if rt.successor != "" {
			line += " -> " + rt.successor
		}
		got = append(got, line)
	}
	if len(got) != len(want) {
		t.Fatalf("route table has %d entries, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("route %d = %q, want %q", i, got[i], want[i])
		}
	}

	codes := []string{
		codeOverloaded, codeInvalidNode, codeInvalidEpsilon, codeInvalidArgument,
		codeDeadlineExceeded, codeUnknownGraph, codeConflict, codeInternal,
		codeUnauthorized, codeShardUnavailable,
	}
	wantCodes := []string{
		"overloaded", "invalid_node", "invalid_epsilon", "invalid_argument",
		"deadline_exceeded", "unknown_graph", "conflict", "internal",
		"unauthorized", "shard_unavailable",
	}
	for i, c := range codes {
		if c != wantCodes[i] {
			t.Errorf("error code %d = %q, want %q", i, c, wantCodes[i])
		}
	}
}

// adaptiveEnvelope is the single-source /query envelope with the adaptive
// metadata fields.
type adaptiveEnvelope struct {
	queryResultJSON
	Epsilon           float64 `json:"epsilon"`
	EpsilonEffective  float64 `json:"epsilon_effective"`
	Cached            bool    `json:"cached"`
	Coalesced         bool    `json:"coalesced"`
	ServedFromTighter bool    `json:"served_from_tighter"`
}

// TestV1Adaptive drives the adaptive request knob over HTTP: per-request
// on/off over both transports, bit-parity of adaptive=off with the default
// path, range coalescing serving a looser request from a tighter cached
// answer (echoing the requested epsilon, reporting the served one), the
// adaptive counters in graph stats, and rejection of bad spellings.
func TestV1Adaptive(t *testing.T) {
	_, ts, _, _ := newV1Server(t, 1) // build epsilon 0.3

	// adaptive=off must be byte-identical to the default path (the server
	// boots with no -adaptive flag, so auto resolves to off).
	var def, off adaptiveEnvelope
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3&nocache=1", &def); r.StatusCode != http.StatusOK {
		t.Fatalf("default query = %d", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3&nocache=1&adaptive=off", &off); r.StatusCode != http.StatusOK {
		t.Fatalf("adaptive=off query = %d", r.StatusCode)
	}
	a, _ := json.Marshal(def.Scores)
	b, _ := json.Marshal(off.Scores)
	if string(a) != string(b) {
		t.Errorf("adaptive=off diverges from default:\n%s\n%s", a, b)
	}

	// Adaptive on, tight epsilon: computed and cached at 0.5.
	var tight adaptiveEnvelope
	if r := postJSON(t, ts.URL+"/v1/graphs/default/query", `{"u": 3, "epsilon": 0.5, "adaptive": "on"}`, &tight); r.StatusCode != http.StatusOK {
		t.Fatalf("adaptive tight query = %d", r.StatusCode)
	}
	if tight.Epsilon != 0.5 || tight.EpsilonEffective != 0.5 || tight.ServedFromTighter {
		t.Fatalf("tight envelope = %+v", tight)
	}

	// A looser adaptive request for the same source is served from the
	// tighter cached answer: requested epsilon echoed, served one reported.
	var loose adaptiveEnvelope
	if r := postJSON(t, ts.URL+"/v1/graphs/default/query", `{"u": 3, "epsilon": 0.8, "adaptive": "on"}`, &loose); r.StatusCode != http.StatusOK {
		t.Fatalf("adaptive loose query = %d", r.StatusCode)
	}
	if !loose.Cached || !loose.ServedFromTighter || loose.Epsilon != 0.8 || loose.EpsilonEffective != 0.5 {
		t.Fatalf("loose envelope = %+v", loose)
	}
	la, _ := json.Marshal(loose.Scores)
	ta, _ := json.Marshal(tight.Scores)
	if string(la) != string(ta) {
		t.Errorf("range-coalesced answer diverges from the tight one")
	}

	// The adaptive counters surface in graph stats.
	var stats struct {
		Engine map[string]any `json:"engine"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/stats", &stats); r.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", r.StatusCode)
	}
	if stats.Engine["range_coalesced"] != float64(1) {
		t.Errorf("range_coalesced = %v, want 1", stats.Engine["range_coalesced"])
	}
	if rb, re := stats.Engine["rounds_budget"].(float64), stats.Engine["rounds_executed"].(float64); rb <= 0 || re <= 0 || re > rb {
		t.Errorf("rounds executed/budget = %v/%v", re, rb)
	}
	// Whether the stop rule fires on this tiny test snapshot depends on its
	// per-round sample counts (early stopping itself is pinned by the core
	// and engine suites); here only the counter's presence is contractual.
	if _, ok := stats.Engine["early_stops"].(float64); !ok {
		t.Errorf("early_stops missing from engine stats: %v", stats.Engine["early_stops"])
	}

	// topk carries the adaptive metadata too.
	var top struct {
		EpsilonEffective  float64 `json:"epsilon_effective"`
		ServedFromTighter bool    `json:"served_from_tighter"`
	}
	if r := getJSON(t, ts.URL+"/v1/graphs/default/topk?u=3&k=4&epsilon=0.9&adaptive=on", &top); r.StatusCode != http.StatusOK {
		t.Fatalf("adaptive topk = %d", r.StatusCode)
	}
	if !top.ServedFromTighter || top.EpsilonEffective != 0.5 {
		t.Errorf("adaptive topk envelope = %+v", top)
	}

	// Bad spellings are rejected on both transports.
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3&adaptive=bogus", nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("adaptive=bogus GET = %d, want 400", r.StatusCode)
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/default/query", `{"u": 3, "adaptive": "maybe"}`, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("adaptive=maybe POST = %d, want 400", r.StatusCode)
	}
}
