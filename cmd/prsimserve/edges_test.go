package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prsim"
)

// newEdgesServer boots a self-contained server with custom mutation-related
// config on top of the standard test snapshot.
func newEdgesServer(t *testing.T, mutate func(*config)) (*server, *httptest.Server, *prsim.Graph, string) {
	t.Helper()
	g, err := prsim.GeneratePowerLawGraph(150, 6, 2.5, true, 5)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	path := t.TempDir() + "/idx.prsim"
	writeSnapshot(t, g, path, 1)
	cfg := config{
		loadIndex: path,
		shards:    2,
		workers:   2,
		cacheSize: 16,
		timeout:   10 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := buildServer(cfg)
	if err != nil {
		t.Fatalf("buildServer: %v", err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(srv.stop) })
	return srv, ts, g, path
}

// TestV1EdgesApplyPublishReload drives the full mutation pipeline: a batch is
// applied incrementally, published as a delta next to the snapshot, served
// immediately, survives a reload (the reload re-opens base+delta), and the
// published pair opens to a state bit-identical to what the server serves.
func TestV1EdgesApplyPublishReload(t *testing.T) {
	// On a 150-node graph a batch can perturb every hub, making the delta
	// nearly base-sized; a large ratio keeps the publish on the delta path
	// (the rewrite path has its own test below).
	srv, ts, g, path := newEdgesServer(t, func(c *config) { c.rewriteRatio = 100 })

	// Deleting demands an existing edge; pick one from the seed graph.
	delFrom := -1
	var delTo int32
	for u := 0; u < g.NumNodes(); u++ {
		if nbrs := g.Internal().OutNeighbors(u); len(nbrs) > 0 {
			delFrom, delTo = u, nbrs[0]
			break
		}
	}
	if delFrom < 0 {
		t.Fatal("seed graph has no edges")
	}

	var applied struct {
		Status         string  `json:"status"`
		Generation     uint64  `json:"generation"`
		Updates        int     `json:"updates"`
		HubsTotal      int     `json:"hubs_total"`
		HubsRecomputed int     `json:"hubs_recomputed"`
		FractionHubs   float64 `json:"fraction_hubs"`
		Published      string  `json:"published"`
		DeltaBytes     uint64  `json:"delta_bytes"`
	}
	body := fmt.Sprintf(`{"updates": [{"from": 3, "to": 140}, {"from": 7, "to": 11}, {"from": %d, "to": %d, "delete": true}]}`, delFrom, delTo)
	resp := postJSON(t, ts.URL+"/v1/graphs/default/edges", body, &applied)
	if resp.StatusCode != http.StatusOK || applied.Status != "applied" {
		t.Fatalf("edges = %d %+v", resp.StatusCode, applied)
	}
	if applied.Generation != 2 || applied.Updates != 3 {
		t.Errorf("generation/updates = %d/%d, want 2/3", applied.Generation, applied.Updates)
	}
	if applied.Published != "delta" || applied.DeltaBytes == 0 {
		t.Errorf("published = %q (%d bytes), want a delta", applied.Published, applied.DeltaBytes)
	}
	if applied.HubsRecomputed <= 0 || applied.HubsRecomputed > applied.HubsTotal {
		t.Errorf("hubs recomputed = %d of %d, want within (0, total]", applied.HubsRecomputed, applied.HubsTotal)
	}
	st, err := os.Stat(path + deltaSuffix)
	if err != nil {
		t.Fatalf("published delta missing: %v", err)
	}
	if uint64(st.Size()) != applied.DeltaBytes {
		t.Errorf("delta on disk is %d bytes, response said %d", st.Size(), applied.DeltaBytes)
	}

	// The published base+delta pair must open to exactly the serving state.
	pub, err := prsim.OpenSnapshotDelta(path, path+deltaSuffix)
	if err != nil {
		t.Fatalf("OpenSnapshotDelta: %v", err)
	}
	defer pub.Close()
	for _, u := range []int{0, 3, 7, 42, 140} {
		var served queryResultJSON
		if r := getJSON(t, fmt.Sprintf("%s/v1/graphs/default/query?u=%d&nocache=1", ts.URL, u), &served); r.StatusCode != http.StatusOK {
			t.Fatalf("query u=%d: %d", u, r.StatusCode)
		}
		want, err := pub.Query(u)
		if err != nil {
			t.Fatalf("Query(%d): %v", u, err)
		}
		if served.Support != len(want.Scores()) {
			t.Errorf("u=%d: served support %d, published snapshot has %d", u, served.Support, len(want.Scores()))
		}
	}

	// A second batch accumulates into the (rewritten) delta against the same
	// base generation.
	resp = postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": [{"from": 20, "to": 21}]}`, &applied)
	if resp.StatusCode != http.StatusOK || applied.Generation != 3 || applied.Published != "delta" {
		t.Fatalf("second batch = %d %+v", resp.StatusCode, applied)
	}

	// Reload re-opens base+delta: the updated state survives, and the stats
	// surface both the update generation and the mutation counters.
	var reload map[string]any
	if r := postJSON(t, ts.URL+"/v1/graphs/default/reload", "", &reload); r.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d %v", r.StatusCode, reload)
	}
	if gen := srv.def.Current().Generation(); gen != 3 {
		t.Errorf("update generation after reload = %d, want 3 (delta not layered on reload)", gen)
	}
	var stats struct {
		Index     map[string]any `json:"index"`
		Mutations map[string]any `json:"mutations"`
	}
	getJSON(t, ts.URL+"/v1/graphs/default/stats", &stats)
	if stats.Index["update_generation"] != float64(3) {
		t.Errorf("stats update_generation = %v, want 3", stats.Index["update_generation"])
	}
	if stats.Mutations["batches"] != float64(2) || stats.Mutations["updates"] != float64(4) {
		t.Errorf("mutation counters = %v", stats.Mutations)
	}
	if stats.Mutations["deltas_published"] != float64(2) {
		t.Errorf("deltas_published = %v, want 2", stats.Mutations["deltas_published"])
	}
}

// TestV1EdgesFullRewrite forces the rewrite path with a tiny -rewriteratio:
// the snapshot file itself is republished (becoming the next delta base), the
// stale delta is removed, and the on-disk generation advances.
func TestV1EdgesFullRewrite(t *testing.T) {
	_, ts, _, path := newEdgesServer(t, func(c *config) { c.rewriteRatio = 1e-12 })

	var applied struct {
		Published  string `json:"published"`
		Generation uint64 `json:"generation"`
	}
	resp := postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": [{"from": 5, "to": 99}]}`, &applied)
	if resp.StatusCode != http.StatusOK || applied.Published != "rewrite" {
		t.Fatalf("edges = %d %+v, want a full rewrite", resp.StatusCode, applied)
	}
	if _, err := os.Stat(path + deltaSuffix); !os.IsNotExist(err) {
		t.Errorf("delta file still present after full rewrite (err=%v)", err)
	}
	gens, ok, err := prsim.SnapshotFileGens(path)
	if err != nil || !ok {
		t.Fatalf("SnapshotFileGens: ok=%v err=%v", ok, err)
	}
	if gens.Generation() != 2 {
		t.Errorf("rewritten base generation = %d, want 2", gens.Generation())
	}

	// The next batch deltas against the rewritten base.
	resp = postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": [{"from": 6, "to": 100}]}`, &applied)
	if resp.StatusCode != http.StatusOK || applied.Generation != 3 {
		t.Fatalf("post-rewrite batch = %d %+v", resp.StatusCode, applied)
	}
}

// TestV1EdgesValidation covers the client-error paths: empty batch, malformed
// JSON, out-of-range endpoints, unknown graph.
func TestV1EdgesValidation(t *testing.T) {
	_, ts, _, _ := newEdgesServer(t, nil)

	var env struct {
		Error errorJSON `json:"error"`
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": []}`, &env); r.StatusCode != http.StatusBadRequest || env.Error.Code != codeInvalidArgument {
		t.Errorf("empty batch = %d %+v", r.StatusCode, env.Error)
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": [{"frm": 1}]}`, &env); r.StatusCode != http.StatusBadRequest || env.Error.Code != codeInvalidArgument {
		t.Errorf("unknown field = %d %+v", r.StatusCode, env.Error)
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/default/edges", `{"updates": [{"from": 0, "to": 99999}]}`, &env); r.StatusCode != http.StatusBadRequest || env.Error.Code != codeInvalidNode {
		t.Errorf("out-of-range endpoint = %d %+v", r.StatusCode, env.Error)
	}
	if r := postJSON(t, ts.URL+"/v1/graphs/nope/edges", `{"updates": [{"from": 0, "to": 1}]}`, &env); r.StatusCode != http.StatusNotFound || env.Error.Code != codeUnknownGraph {
		t.Errorf("unknown graph = %d %+v", r.StatusCode, env.Error)
	}
}

// TestV1AdminToken pins the -admintoken gate: admin endpoints demand the
// bearer token (constant 401 envelope without it), the query plane stays
// open, and the right token passes.
func TestV1AdminToken(t *testing.T) {
	_, ts, _, _ := newEdgesServer(t, func(c *config) { c.adminToken = "sesame" })

	do := func(method, url, body, token string) *http.Response {
		var r io.Reader
		if body != "" {
			r = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, r)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	edgesBody := `{"updates": [{"from": 1, "to": 2}]}`
	for _, tc := range []struct{ method, path, body string }{
		{http.MethodPost, "/v1/graphs/default/edges", edgesBody},
		{http.MethodPost, "/v1/graphs/default/reload", ""},
		{http.MethodPost, "/reload", ""},
		{http.MethodPut, "/v1/graphs/extra", `{"snapshot": "x"}`},
		{http.MethodDelete, "/v1/graphs/extra", ""},
	} {
		if resp := do(tc.method, ts.URL+tc.path, tc.body, ""); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s without token = %d, want 401", tc.method, tc.path, resp.StatusCode)
		} else if wa := resp.Header.Get("WWW-Authenticate"); !strings.Contains(wa, "Bearer") {
			t.Errorf("%s %s WWW-Authenticate = %q", tc.method, tc.path, wa)
		}
		if resp := do(tc.method, ts.URL+tc.path, tc.body, "wrong"); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s with wrong token = %d, want 401", tc.method, tc.path, resp.StatusCode)
		}
	}

	// The query plane needs no token.
	var res queryResultJSON
	if r := getJSON(t, ts.URL+"/v1/graphs/default/query?u=3", &res); r.StatusCode != http.StatusOK {
		t.Errorf("query without token = %d, want 200", r.StatusCode)
	}
	// The right token passes (and actually applies).
	if resp := do(http.MethodPost, ts.URL+"/v1/graphs/default/edges", edgesBody, "sesame"); resp.StatusCode != http.StatusOK {
		t.Errorf("edges with token = %d, want 200", resp.StatusCode)
	}
	if resp := do(http.MethodPost, ts.URL+"/v1/graphs/default/reload", "", "sesame"); resp.StatusCode != http.StatusOK {
		t.Errorf("reload with token = %d, want 200", resp.StatusCode)
	}
}

// TestServeEdgesReloadUnderLoad is the dynamic-graph zero-downtime guarantee:
// clients hammer queries while edge mutations and hot reloads interleave on
// the same graph; not a single request may fail, and the final serving state
// is the expected update generation. Run under -race in CI.
func TestServeEdgesReloadUnderLoad(t *testing.T) {
	srv, ts, _, _ := newEdgesServer(t, nil)

	const clients = 4
	var failures, requests atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				u := (c*37 + i*11) % 150
				resp, err := http.Get(ts.URL + "/v1/graphs/default/query?u=" + strconv.Itoa(u))
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d: status %d", c, resp.StatusCode)
				}
			}
		}(c)
	}

	const batches = 3
	for b := 1; b <= batches; b++ {
		body := fmt.Sprintf(`{"updates": [{"from": %d, "to": %d}, {"from": %d, "to": %d, "delete": true}]}`,
			b*13%150, (b*29+7)%150, b*13%150, (b*29+7)%150)
		var applied struct {
			Generation uint64 `json:"generation"`
		}
		if r := postJSON(t, ts.URL+"/v1/graphs/default/edges", body, &applied); r.StatusCode != http.StatusOK {
			t.Fatalf("edges batch %d = %d", b, r.StatusCode)
		}
		if applied.Generation != uint64(b+1) {
			t.Fatalf("batch %d generation = %d, want %d", b, applied.Generation, b+1)
		}
		// A reload mid-stream must pick the published base+delta back up.
		resp, err := http.Post(ts.URL+"/v1/graphs/default/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload after batch %d = %d", b, resp.StatusCode)
		}
	}
	close(done)
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed across %d mutate+reload rounds", f, requests.Load(), batches)
	}
	if requests.Load() == 0 {
		t.Fatal("no requests completed; load generator never ran")
	}
	if gen := srv.def.Current().Generation(); gen != batches+1 {
		t.Errorf("final update generation = %d, want %d", gen, batches+1)
	}
}
