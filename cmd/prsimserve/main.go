// Command prsimserve serves PRSim single-source SimRank queries over HTTP
// with JSON responses. It loads a graph and (preferably) a previously saved
// index at startup, then answers query traffic through the concurrent engine:
// a bounded worker pool with an optional LRU result cache.
//
// Usage:
//
//	prsimquery -graph graph.txt -saveindex idx.prsim          # build once
//	prsimserve -graph graph.txt -loadindex idx.prsim -addr :8080
//	prsimserve -graph graph.txt -loadindex idx.prsim -mmap    # zero-copy start
//	prsimserve -dataset DB -epsilon 0.1                       # build at startup
//
// With -mmap the saved index is memory-mapped instead of parsed: startup cost
// is independent of index size and concurrent server processes mapping the
// same file share one page cache. /stats reports the backing mode.
//
// Endpoints:
//
//	GET /query?u=3            single-source query (repeat u for a batch;
//	                          ?limit=N caps the nodes returned per source)
//	GET /topk?u=3&k=20        k most similar nodes to u
//	GET /pair?u=3&v=5         single-pair SimRank s(u, v)
//	GET /healthz              liveness probe
//	GET /stats                graph, index and engine statistics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"prsim"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file to load")
	flag.StringVar(&cfg.dataset, "dataset", "", "benchmark dataset stand-in to generate (DB, LJ, IT, TW, UK)")
	flag.StringVar(&cfg.loadIndex, "loadindex", "", "saved index file to load (skips preprocessing)")
	flag.BoolVar(&cfg.mmap, "mmap", false, "open -loadindex as a zero-copy mmap snapshot (near-instant start, shared page cache)")
	flag.BoolVar(&cfg.mmapVerify, "mmapverify", false, "with -mmap, verify the snapshot checksum at startup (reads the whole file once)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.1, "additive error target when building an index")
	flag.Float64Var(&cfg.decay, "decay", prsim.DefaultDecay, "SimRank decay factor c")
	flag.Float64Var(&cfg.scale, "samplescale", 1.0, "Monte Carlo sample scale (1.0 = paper constants)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.maxLevels, "maxlevels", 0, "cap on walk levels (0 = default 64)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent query workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cacheSize, "cache", 1024, "LRU result cache size (0 disables)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline")
	flag.Parse()

	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("prsimserve: graph %d nodes / %d edges, %d hubs (%s-backed, ready in %s), %d workers, listening on %s",
		srv.idx.Graph().NumNodes(), srv.idx.Graph().NumEdges(), srv.idx.NumHubs(),
		srv.idx.Backing(), srv.loadTime.Round(time.Millisecond), srv.eng.Workers(), cfg.addr)
	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.handler(),
		// Guard the listener against stalled clients: bound header reads and
		// idle keep-alives, and cap response writes a little past the
		// per-request query deadline.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	graphPath, dataset string
	loadIndex          string
	mmap, mmapVerify   bool
	epsilon, decay     float64
	scale              float64
	seed               uint64
	maxLevels          int
	workers, cacheSize int
	addr               string
	timeout            time.Duration
}

// server holds the loaded index and engine; its handler is separable from the
// listener so tests can drive it through httptest.
type server struct {
	idx      *prsim.Index
	eng      *prsim.Engine
	start    time.Time
	loadTime time.Duration // time to load/build the index at startup
	timeout  time.Duration
}

// buildServer loads the graph, loads or builds the index, and wires up the
// engine.
func buildServer(cfg config) (*server, error) {
	var g *prsim.Graph
	var err error
	switch {
	case cfg.graphPath != "":
		g, err = prsim.LoadGraphFile(cfg.graphPath)
	case cfg.dataset != "":
		g, err = prsim.LoadDataset(cfg.dataset)
	default:
		return nil, fmt.Errorf("specify -graph or -dataset")
	}
	if err != nil {
		return nil, err
	}

	var idx *prsim.Index
	loadStart := time.Now()
	switch {
	case cfg.loadIndex != "" && cfg.mmap:
		idx, err = prsim.OpenSnapshot(cfg.loadIndex, g)
		if err == nil && cfg.mmapVerify {
			err = idx.Verify()
		}
	case cfg.loadIndex != "":
		idx, err = prsim.LoadIndexFile(cfg.loadIndex, g)
	case cfg.mmap:
		return nil, fmt.Errorf("-mmap requires -loadindex (a saved snapshot file to map)")
	default:
		idx, err = prsim.BuildIndex(g, prsim.Options{
			Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed,
			SampleScale: cfg.scale, MaxLevels: cfg.maxLevels,
		})
	}
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)
	eng, err := prsim.NewEngine(idx, prsim.EngineOptions{Workers: cfg.workers, CacheSize: cfg.cacheSize})
	if err != nil {
		return nil, err
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &server{idx: idx, eng: eng, start: time.Now(), loadTime: loadTime, timeout: timeout}, nil
}

// handler builds the route table. Per-request deadlines come from requestCtx
// (every query path is context-cancellable), so timed-out requests get the
// same JSON error contract as every other failure.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /pair", s.handlePair)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// scoredNodeJSON is one (node, score) pair in a response.
type scoredNodeJSON struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// queryResultJSON is the answer to one single-source query.
type queryResultJSON struct {
	Source  int              `json:"source"`
	Support int              `json:"support"` // number of non-zero scores
	Scores  []scoredNodeJSON `json:"scores"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sources, err := intParams(q["u"])
	if err != nil || len(sources) == 0 {
		writeError(w, http.StatusBadRequest, "at least one integer u parameter is required")
		return
	}
	limit, err := intParam(q.Get("limit"), 0)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := s.eng.QueryBatch(ctx, sources)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([]queryResultJSON, len(results))
	for i, res := range results {
		out[i] = renderResult(res, limit)
	}
	if len(q["u"]) == 1 {
		writeJSON(w, out[0])
		return
	}
	writeJSON(w, map[string]any{"results": out})
}

// renderResult flattens a result into descending-score order, source first
// (its self-similarity is 1, the maximum), keeping at most limit nodes when
// limit > 0.
func renderResult(res *prsim.Result, limit int) queryResultJSON {
	scores := res.Scores()
	nodes := make([]scoredNodeJSON, 0, len(scores))
	for v, sc := range scores {
		nodes = append(nodes, scoredNodeJSON{Node: v, Score: sc})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Score != nodes[j].Score {
			return nodes[i].Score > nodes[j].Score
		}
		return nodes[i].Node < nodes[j].Node
	})
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	return queryResultJSON{Source: res.Source(), Support: len(scores), Scores: nodes}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, err := intParam(q.Get("u"), -1)
	if err != nil || u < 0 {
		writeError(w, http.StatusBadRequest, "integer u parameter is required")
		return
	}
	k, err := intParam(q.Get("k"), 20)
	if err != nil || k <= 0 {
		writeError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	top, err := s.eng.TopK(ctx, u, k)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	nodes := make([]scoredNodeJSON, len(top))
	for i, t := range top {
		nodes[i] = scoredNodeJSON{Node: t.Node, Label: t.Label, Score: t.Score}
	}
	writeJSON(w, map[string]any{"source": u, "k": k, "top": nodes})
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := intParam(q.Get("u"), -1)
	v, errV := intParam(q.Get("v"), -1)
	if errU != nil || errV != nil || u < 0 || v < 0 {
		writeError(w, http.StatusBadRequest, "integer u and v parameters are required")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	score, err := s.eng.Pair(ctx, u, v)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, map[string]any{"u": u, "v": v, "score": score})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	g := s.idx.Graph()
	ist := s.idx.Stats()
	est := s.eng.Stats()
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"graph": map[string]any{
			"nodes": g.NumNodes(),
			"edges": g.NumEdges(),
		},
		"index": map[string]any{
			"hubs":          ist.NumHubs,
			"entries":       ist.Entries,
			"size_bytes":    s.idx.SizeBytes(),
			"second_moment": ist.SecondMoment,
			"backing":       s.idx.Backing(),
			"load_seconds":  s.loadTime.Seconds(),
		},
		"engine": map[string]any{
			"workers":       est.Workers,
			"queries":       est.Queries,
			"cache_hits":    est.CacheHits,
			"cache_entries": est.CacheEntries,
			"pair_queries":  est.PairQueries,
			"errors":        est.Errors,
		},
	})
}

func (s *server) requestCtx(r *http.Request) (ctx context.Context, cancel func()) {
	return context.WithTimeout(r.Context(), s.timeout)
}

// writeQueryError maps engine errors to HTTP statuses: bad node ids are the
// client's fault, timeouts are 504, everything else is a server-side failure.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, prsim.ErrInvalidNode):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("prsimserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func intParams(ss []string) ([]int, error) {
	out := make([]int, 0, len(ss))
	for _, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
