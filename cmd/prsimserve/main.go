// Command prsimserve is a multi-graph HTTP serving tier for PRSim
// single-source SimRank queries. It mounts one or more logical graphs —
// snapshot files, or an index built at startup — into a registry and serves
// them through a versioned, graph-scoped JSON API:
//
//	prsimquery -graph graph.txt -saveindex idx.prsim          # build once
//	prsimserve -loadindex idx.prsim -addr :8080               # self-contained v3
//	prsimserve -loadindex idx.prsim -shards 4 -watch 2s       # sharded + hot reload
//	prsimserve -graph graph.txt -loadindex idx.prsim -mmap    # v1/v2, zero-copy
//	prsimserve -dataset DB -epsilon 0.1                       # build at startup
//
// The boot-time graph mounts under the name "default"; further graphs mount
// and unmount at runtime through the admin endpoints. Each graph is served
// by -shards engine shards sharing one zero-copy snapshot mapping: sources
// hash to shards (stable splitmix64), single-source queries route
// point-to-point, batches and multi-source top-k scatter-gather with a
// deterministic merge — answers are bit-identical to a single-engine run at
// any shard count.
//
// Admission control is deadline-aware and two-class: interactive requests
// (the default) are dispatched ahead of queued batch-class work, each class
// has its own bounded queue (-maxqueue, per class), and a request whose
// timeout_ms provably cannot be met — predicted queue wait from observed
// per-class service times exceeds the deadline — is shed immediately with
// 429 and a telemetry-derived Retry-After instead of timing out in line.
//
// Endpoints (see README for the full reference):
//
//	GET/POST /v1/graphs/{name}/query    single-source / batch query
//	GET/POST /v1/graphs/{name}/topk     top-k (multi-source merges globally)
//	GET  /v1/graphs/{name}/pair         single-pair SimRank s(u, v)
//	GET  /v1/graphs/{name}/stats        per-graph engine/shard statistics
//	POST /v1/graphs/{name}/edges        apply streamed edge mutations
//	POST /v1/graphs/{name}/reload       re-open backing, swap without drops
//	GET  /v1/graphs                     list mounted graphs
//	PUT  /v1/graphs/{name}              mount a snapshot
//	DELETE /v1/graphs/{name}            unmount
//	GET  /v1/stats                      server-wide statistics
//	GET  /healthz, /v1/healthz          liveness probe
//
// Every query endpoint accepts the same per-request knobs — epsilon, k,
// limit, timeout_ms, no_cache, parallelism, class ("interactive" or
// "batch"), graph (body/param alternative to the path) — as URL parameters
// on GET or a JSON body on POST. Errors share one envelope:
// {"error":{"code":..., "message":..., "retry_after_ms":...}}.
//
// The pre-/v1 routes (/query, /topk, /pair, /reload, /stats) remain as
// aliases for the default graph; they answer with a Deprecation header and a
// Link to their successor. New clients should use /v1.
//
// Hot reload: with -watch the default graph's snapshot file is polled and a
// change swaps in the re-opened snapshot on every shard without dropping
// in-flight requests; POST /v1/graphs/default/reload triggers the same swap
// on demand. With -verifyevery the serving snapshot's CRC-32C is re-verified
// in the background, and a failed verification triggers an automatic
// rollback to a freshly verified re-open of the snapshot path.
//
// Streaming mutations: POST /v1/graphs/{name}/edges applies a batch of edge
// insertions/deletions incrementally (only the hubs the batch can perturb are
// recomputed), publishes the successor as a delta file next to the snapshot
// (<snapshot>.delta; a full rewrite once the delta passes -rewriteratio of
// the base size), and hot-swaps every shard with impact-filtered cache
// retention. Opens and reloads layer a published delta back over its base
// automatically. Admin endpoints (edges, reload, mount, unmount) can be gated
// behind a bearer token with -admintoken.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"prsim"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file to load (not needed for self-contained v3 snapshots)")
	flag.StringVar(&cfg.dataset, "dataset", "", "benchmark dataset stand-in to generate (DB, LJ, IT, TW, UK)")
	flag.StringVar(&cfg.loadIndex, "loadindex", "", "saved index file to load (skips preprocessing)")
	flag.BoolVar(&cfg.mmap, "mmap", false, "open -loadindex as a zero-copy mmap snapshot (near-instant start, shared page cache)")
	flag.BoolVar(&cfg.mmapVerify, "mmapverify", false, "with -mmap, verify the snapshot checksum at startup (reads the whole file once)")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll -loadindex for changes at this interval and hot-swap on change (0 disables)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.1, "additive error target when building an index")
	flag.Float64Var(&cfg.decay, "decay", prsim.DefaultDecay, "SimRank decay factor c")
	flag.Float64Var(&cfg.scale, "samplescale", 1.0, "Monte Carlo sample scale (1.0 = paper constants)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.maxLevels, "maxlevels", 0, "cap on walk levels (0 = default 64)")
	flag.IntVar(&cfg.shards, "shards", 1, "engine shards per graph: independent worker pools and caches over one shared snapshot mapping (answers are bit-identical at any shard count)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent query workers per shard (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.parallel, "parallel", 0, "default intra-query parallelism hint: walk chunks per query may run on up to this many workers (0 = auto: borrow idle workers; 1 = serial)")
	flag.BoolVar(&cfg.adaptive, "adaptive", false, "default requests with no adaptive field to variance-based early termination (per-request adaptive=on/off always wins)")
	flag.IntVar(&cfg.cacheSize, "cache", 1024, "per-shard LRU result cache size (0 disables)")
	flag.IntVar(&cfg.maxQueue, "maxqueue", 0, "per-class admission queue bound before requests are shed with 429 (0 = max(32, 4*workers), negative = unbounded)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline ceiling (timeout_ms may only shorten it)")
	flag.DurationVar(&cfg.verifyEvery, "verifyevery", 0, "re-verify the snapshot checksum in the background at this interval (0 disables)")
	flag.StringVar(&cfg.adminToken, "admintoken", "", "bearer token required on admin endpoints (reload, mount, unmount, edges, health); empty leaves the admin plane open")
	flag.StringVar(&cfg.shardMap, "shardmap", "", "JSON shard-map file mounting remote graphs at boot: {\"graphs\":{name:{\"placement\":[[endpoint,...],...],...}}}")
	flag.DurationVar(&cfg.drainTimeout, "draintimeout", 15*time.Second, "graceful-shutdown drain budget: on SIGTERM/SIGINT stop accepting and wait this long for in-flight requests before exiting")
	flag.Float64Var(&cfg.rewriteRatio, "rewriteratio", 0.5, "full-rewrite threshold for edge updates: republish the whole snapshot once the delta would exceed this fraction of the base size")
	flag.Float64Var(&cfg.driftBudget, "mutatedrift", 0, "drift budget for edge updates in units of rmax: hubs perturbed by at most this much skip recomputation (bounded score drift, smaller update footprint); 0 keeps updates bit-exact")
	flag.Parse()

	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
	idx := srv.def.Current()
	log.Printf("prsimserve: graph %q %d nodes / %d edges (%s-backed), %d hubs (%s-backed, ready in %s), %d shards x %d workers, listening on %s",
		prsim.DefaultGraph, idx.Graph().NumNodes(), idx.Graph().NumEdges(), idx.GraphBacking(), idx.NumHubs(),
		idx.Backing(), srv.loadTime.Round(time.Millisecond), srv.def.NumShards(),
		srv.def.StatsAggregate().Workers/srv.def.NumShards(), cfg.addr)
	if cfg.watch > 0 {
		go srv.watch(cfg.watch)
		log.Printf("prsimserve: watching %s every %s for hot reload", cfg.loadIndex, cfg.watch)
	}
	if cfg.verifyEvery > 0 {
		go srv.verifyLoop(cfg.verifyEvery)
		log.Printf("prsimserve: verifying snapshot checksum every %s in the background", cfg.verifyEvery)
	}
	if cfg.shardMap != "" {
		if err := srv.mountShardMap(cfg.shardMap); err != nil {
			fmt.Fprintf(os.Stderr, "prsimserve: shard map: %v\n", err)
			os.Exit(1)
		}
	}
	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.handler(),
		// Guard the listener against stalled clients: bound header reads and
		// idle keep-alives, and cap response writes a little past the
		// per-request query deadline.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// Graceful shutdown: on SIGTERM/SIGINT stop accepting, drain in-flight
	// requests within -draintimeout, then stop the background loops and
	// close every mounted graph (releasing snapshot mappings and remote
	// shard clients) before exiting.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		stopSignals() // a second signal kills the process immediately
	}
	log.Printf("prsimserve: shutting down (draining for up to %s)", cfg.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("prsimserve: drain incomplete: %v", err)
	}
	close(srv.stop)
	if err := srv.reg.Close(); err != nil {
		log.Printf("prsimserve: closing registry: %v", err)
	}
	log.Printf("prsimserve: shutdown complete")
}

type config struct {
	graphPath, dataset string
	loadIndex          string
	mmap, mmapVerify   bool
	watch              time.Duration
	verifyEvery        time.Duration
	epsilon, decay     float64
	scale              float64
	seed               uint64
	maxLevels          int
	shards             int
	workers, cacheSize int
	parallel           int
	adaptive           bool
	maxQueue           int
	addr               string
	timeout            time.Duration
	adminToken         string
	rewriteRatio       float64
	driftBudget        float64
	shardMap           string
	drainTimeout       time.Duration
}

// remoteTransport, when non-nil, overrides the HTTP transport of every
// remote graph mounted by this server — the test seam that lets chaos tests
// drive remote mounts through an in-process handler or fault injector
// without a network.
var remoteTransport http.RoundTripper

// server wires the multi-graph registry to the HTTP surface; its handler is
// separable from the listener so tests can drive it through httptest. The
// watch/verify/rollback machinery applies to the default graph (the one
// whose snapshot file the flags name); runtime-mounted graphs reload on
// demand through the admin API.
type server struct {
	cfg      config
	g        *prsim.Graph // startup graph; nil when serving a self-contained snapshot
	reg      *prsim.Registry
	def      *prsim.Served // the default graph's serving handle
	start    time.Time
	timeout  time.Duration
	loadTime time.Duration // time to load/build the index at startup

	// reloadMu serializes default-graph reloads (manual and
	// watcher-triggered); queries never take it. The fields below it record
	// the last successful load.
	reloadMu     sync.Mutex
	lastLoadTime time.Duration
	lastLoadAt   time.Time
	watchedMod   time.Time
	watchedSize  int64

	// mutMu guards the mutator map; each graph's mutation pipeline state
	// (apply→publish→swap serialization, delta base gens, counters) lives in
	// its mutator (see mutate.go).
	mutMu    sync.Mutex
	mutators map[string]*mutator

	// verifyMu guards the background checksum-verification status below it.
	verifyMu      sync.Mutex
	verifies      int64
	rolledBack    int64
	lastVerifyAt  time.Time
	lastVerifyDur time.Duration
	lastVerifyErr error
	lastVerifyGen uint64

	// stop ends the watch and verify loops (used by tests; main lets them
	// run forever).
	stop chan struct{}
}

// buildServer loads the graph (unless the snapshot is self-contained) and
// mounts the boot-time index under the default graph name.
func buildServer(cfg config) (*server, error) {
	var g *prsim.Graph
	var err error
	switch {
	case cfg.graphPath != "":
		g, err = prsim.LoadGraphFile(cfg.graphPath)
	case cfg.dataset != "":
		g, err = prsim.LoadDataset(cfg.dataset)
	case cfg.loadIndex != "":
		// Self-contained snapshot: the graph comes out of the file itself.
	default:
		return nil, fmt.Errorf("specify -graph, -dataset, or a self-contained v3 -loadindex")
	}
	if err != nil {
		return nil, err
	}
	if cfg.watch > 0 && cfg.loadIndex == "" {
		return nil, fmt.Errorf("-watch requires -loadindex (a snapshot file to watch)")
	}
	if cfg.mmap && cfg.loadIndex == "" {
		return nil, fmt.Errorf("-mmap requires -loadindex (a saved snapshot file to map)")
	}

	// Capture the snapshot file's identity before opening it, mirroring
	// reload(): a file republished mid-open must trip the watcher later.
	startMod, startSize := statWatched(cfg.loadIndex)
	loadStart := time.Now()
	reg := prsim.NewRegistry()
	def, err := reg.MountOpener(prsim.DefaultGraph, cfg.graphConfig(), func() (*prsim.Index, error) {
		return openIndex(cfg, g)
	})
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s := &server{
		cfg: cfg, g: g, reg: reg, def: def,
		start: time.Now(), timeout: timeout,
		loadTime: loadTime, lastLoadTime: loadTime, lastLoadAt: time.Now(),
		mutators: make(map[string]*mutator),
		stop:     make(chan struct{}),
	}
	s.watchedMod, s.watchedSize = startMod, startSize
	return s, nil
}

// graphConfig derives the default graph's serving shape from the flags.
func (c config) graphConfig() prsim.GraphConfig {
	return prsim.GraphConfig{
		Shards: c.shards,
		Engine: prsim.EngineOptions{Workers: c.workers, CacheSize: c.cacheSize, MaxQueue: c.maxQueue, AdaptiveDefault: c.adaptive},
	}
}

// openIndex loads, maps, or builds the index per the configuration. g may be
// nil only when loading a self-contained snapshot.
func openIndex(cfg config, g *prsim.Graph) (*prsim.Index, error) {
	switch {
	case cfg.loadIndex != "" && g == nil:
		// Self-contained zero-copy open, layering a published edge-update
		// delta over the base when one exists next to the file. Falls back to
		// streaming on unsupported platforms.
		idx, err := openSnapshotAuto(cfg.loadIndex)
		if err == nil && cfg.mmapVerify {
			if verr := idx.Verify(); verr != nil {
				idx.Close()
				return nil, verr
			}
		}
		return idx, err
	case cfg.loadIndex != "" && cfg.mmap:
		// Zero-copy snapshot open against a separately supplied graph.
		idx, err := prsim.OpenSnapshot(cfg.loadIndex, g)
		if err == nil && cfg.mmapVerify {
			if verr := idx.Verify(); verr != nil {
				idx.Close()
				return nil, verr
			}
		}
		return idx, err
	case cfg.loadIndex != "":
		return prsim.LoadIndexFile(cfg.loadIndex, g)
	default:
		return prsim.BuildIndex(g, prsim.Options{
			Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed,
			SampleScale: cfg.scale, MaxLevels: cfg.maxLevels,
		})
	}
}

// reloadInfo summarizes one successful reload for the admin response; it is
// captured under reloadMu so handlers never read the mutable fields raw.
type reloadInfo struct {
	generation   uint64
	loadTime     time.Duration
	backing      string
	graphBacking string
}

// reload re-opens the default graph's snapshot file and hot-swaps it onto
// every shard: new queries see the new index immediately, in-flight queries
// finish on the old one, the old mapping is released once they drain, and
// per-shard result caches are invalidated (generation-keyed). Reloads are
// serialized; queries are never blocked by one.
func (s *server) reload() (reloadInfo, error) {
	if s.cfg.loadIndex == "" {
		return reloadInfo{}, fmt.Errorf("no -loadindex snapshot to reload (index was built at startup)")
	}
	// Serialize against edge mutations first (mutator before reloadMu,
	// everywhere): a reload must never retire the index an apply is reading.
	m := s.mutatorFor(prsim.DefaultGraph)
	m.mu.Lock()
	defer m.mu.Unlock()
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// Capture the file's identity BEFORE opening it: a snapshot renamed over
	// the path while this open is in progress must still look changed on the
	// next watch tick, or the watcher would serve the stale one forever.
	preMod, preSize := statWatched(s.cfg.loadIndex)
	loadStart := time.Now()
	if err := s.def.Reload(nil); err != nil {
		return reloadInfo{}, fmt.Errorf("reload: %w", err)
	}
	idx := s.def.Current()
	s.lastLoadTime = time.Since(loadStart)
	s.lastLoadAt = time.Now()
	s.watchedMod, s.watchedSize = preMod, preSize
	m.refreshBase()
	info := reloadInfo{
		generation:   s.def.Generation(),
		loadTime:     s.lastLoadTime,
		backing:      idx.Backing(),
		graphBacking: idx.GraphBacking(),
	}
	log.Printf("prsimserve: reloaded %s in %s (generation %d, index %s-backed, graph %s-backed)",
		s.cfg.loadIndex, info.loadTime.Round(time.Millisecond), info.generation,
		info.backing, info.graphBacking)
	return info, nil
}

// verifySnapshot re-verifies the currently served snapshot's CRC-32C trailer
// (a full sequential read of the mapped payload) and records the outcome for
// /stats. On corruption the server attempts an automatic rollback: the
// snapshot path is re-opened and the fresh mapping is verified before being
// swapped in, so a republished good file heals the server without operator
// action, while a still-corrupt file leaves the last-good generation serving.
// A reload racing the verification can surface ErrSnapshotClosed for the
// swapped-out snapshot; that is recorded like any other outcome and the next
// tick verifies the new generation.
func (s *server) verifySnapshot() {
	idx := s.def.Current()
	gen := s.def.Generation()
	start := time.Now()
	err := idx.Verify()
	dur := time.Since(start)
	s.verifyMu.Lock()
	s.verifies++
	s.lastVerifyAt = time.Now()
	s.lastVerifyDur = dur
	s.lastVerifyErr = err
	s.lastVerifyGen = gen
	s.verifyMu.Unlock()
	if err == nil {
		log.Printf("prsimserve: background snapshot verify ok (generation %d, %s)", gen, dur.Round(time.Millisecond))
		return
	}
	log.Printf("prsimserve: background snapshot verify FAILED (generation %d): %v", gen, err)
	if s.cfg.loadIndex == "" {
		return // built at startup; nothing on disk to roll back to
	}
	if rerr := s.rollback(); rerr != nil {
		log.Printf("prsimserve: rollback failed (still serving generation %d): %v", gen, rerr)
		return
	}
	s.verifyMu.Lock()
	s.rolledBack++
	s.verifyMu.Unlock()
	log.Printf("prsimserve: rolled back to freshly verified snapshot of %s (generation %d)",
		s.cfg.loadIndex, s.def.Generation())
}

// rollback is the recovery half of verifySnapshot: re-open the snapshot path
// and swap the fresh mapping in, but only after its checksum verifies clean —
// a corrupt on-disk file must never replace the serving generation, whose
// resident pages may still be good. Shares reload's bookkeeping (and its
// lock) so the watcher does not double-load a file the rollback just picked
// up.
func (s *server) rollback() error {
	m := s.mutatorFor(prsim.DefaultGraph)
	m.mu.Lock()
	defer m.mu.Unlock()
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	preMod, preSize := statWatched(s.cfg.loadIndex)
	loadStart := time.Now()
	if err := s.def.Reload(func(idx *prsim.Index) error { return idx.Verify() }); err != nil {
		return err
	}
	s.lastLoadTime = time.Since(loadStart)
	s.lastLoadAt = time.Now()
	s.watchedMod, s.watchedSize = preMod, preSize
	m.refreshBase()
	return nil
}

// verifyLoop runs verifySnapshot on a timer until the server stops.
func (s *server) verifyLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.verifySnapshot()
	}
}

// statWatched returns the snapshot file's identity (zero values when the
// path is empty or unreadable).
func statWatched(path string) (time.Time, int64) {
	if path == "" {
		return time.Time{}, 0
	}
	st, err := os.Stat(path)
	if err != nil {
		return time.Time{}, 0
	}
	return st.ModTime(), st.Size()
}

// changedSinceLastLoad reports whether the watched snapshot file's mtime or
// size moved since the last (re)load.
func (s *server) changedSinceLastLoad() bool {
	st, err := os.Stat(s.cfg.loadIndex)
	if err != nil {
		return false // transiently missing mid-rewrite; try again next tick
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return !st.ModTime().Equal(s.watchedMod) || st.Size() != s.watchedSize
}

// watch polls the snapshot file and reloads on change. Reload failures are
// logged and retried on the next change; the server keeps serving the old
// index (a half-written file simply fails validation and is skipped —
// publishers should still write-then-rename so a mapped file is never
// truncated in place).
func (s *server) watch(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if !s.changedSinceLastLoad() {
			continue
		}
		if _, err := s.reload(); err != nil {
			log.Printf("prsimserve: watch reload failed (still serving previous index): %v", err)
			// Remember the bad file's identity so a broken snapshot is not
			// retried every tick; the next write triggers a fresh attempt.
			s.reloadMu.Lock()
			s.watchedMod, s.watchedSize = statWatched(s.cfg.loadIndex)
			s.reloadMu.Unlock()
		}
	}
}

// route is one entry of the declarative route table. successor, when set,
// marks a legacy route: responses carry a Deprecation header and a Link to
// the /v1 replacement. The table — not just the mux — is the HTTP surface
// contract, pinned by the API-surface snapshot test.
type route struct {
	pattern   string
	handler   http.HandlerFunc
	successor string
}

// routes returns the full route table: the /v1 graph-scoped surface, the
// admin plane, and the deprecated unversioned aliases for the default graph.
func (s *server) routes() []route {
	return []route{
		// v1 query plane (graph-scoped).
		{pattern: "GET /v1/graphs/{graph}/query", handler: s.handleQuery},
		{pattern: "POST /v1/graphs/{graph}/query", handler: s.handleQuery},
		{pattern: "GET /v1/graphs/{graph}/topk", handler: s.handleTopK},
		{pattern: "POST /v1/graphs/{graph}/topk", handler: s.handleTopK},
		{pattern: "GET /v1/graphs/{graph}/pair", handler: s.handlePair},
		{pattern: "GET /v1/graphs/{graph}/stats", handler: s.handleGraphStats},
		// v1 admin plane (bearer-auth gated when -admintoken is set).
		{pattern: "GET /v1/graphs/{graph}/health", handler: s.admin(s.handleGraphHealth)},
		{pattern: "POST /v1/graphs/{graph}/edges", handler: s.admin(s.handleEdges)},
		{pattern: "POST /v1/graphs/{graph}/reload", handler: s.admin(s.handleReload)},
		{pattern: "GET /v1/graphs", handler: s.handleGraphList},
		{pattern: "PUT /v1/graphs/{graph}", handler: s.admin(s.handleMount)},
		{pattern: "DELETE /v1/graphs/{graph}", handler: s.admin(s.handleUnmount)},
		{pattern: "GET /v1/stats", handler: s.handleServerStats},
		{pattern: "GET /v1/healthz", handler: s.handleHealthz},
		// Legacy unversioned aliases: the default graph's endpoints under
		// their pre-/v1 paths, answered with a deprecation notice.
		{pattern: "GET /query", handler: s.handleQuery, successor: "/v1/graphs/default/query"},
		{pattern: "POST /query", handler: s.handleQuery, successor: "/v1/graphs/default/query"},
		{pattern: "GET /topk", handler: s.handleTopK, successor: "/v1/graphs/default/topk"},
		{pattern: "POST /topk", handler: s.handleTopK, successor: "/v1/graphs/default/topk"},
		{pattern: "GET /pair", handler: s.handlePair, successor: "/v1/graphs/default/pair"},
		{pattern: "POST /reload", handler: s.admin(s.handleReload), successor: "/v1/graphs/default/reload"},
		{pattern: "GET /stats", handler: s.handleGraphStats, successor: "/v1/graphs/default/stats"},
		{pattern: "GET /healthz", handler: s.handleHealthz},
	}
}

// handler builds the mux from the route table, wrapping deprecated routes
// with RFC 8594-style headers so clients can discover the migration without
// breaking.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		h := rt.handler
		if rt.successor != "" {
			succ := rt.successor
			inner := h
			h = func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", succ))
				inner(w, r)
			}
		}
		mux.HandleFunc(rt.pattern, h)
	}
	return mux
}

// servedFor resolves the logical graph a request addresses: the {graph} path
// segment when present (the /v1 surface), else the request's graph knob
// (JSON body or URL parameter), else the default graph. A body graph that
// contradicts the path is a client error. On failure the error response has
// already been written.
func (s *server) servedFor(w http.ResponseWriter, r *http.Request, apiGraph string) (*prsim.Served, string, bool) {
	name := r.PathValue("graph")
	if apiGraph != "" {
		if name != "" && name != apiGraph {
			writeError(w, http.StatusBadRequest, codeInvalidArgument,
				fmt.Sprintf("graph %q in request body contradicts graph %q in path", apiGraph, name))
			return nil, "", false
		}
		if name == "" {
			name = apiGraph
		}
	}
	if name == "" {
		name = prsim.DefaultGraph
	}
	sv, err := s.reg.Get(name)
	if err != nil {
		writeQueryError(w, err)
		return nil, "", false
	}
	return sv, name, true
}

// apiRequest is the decoded request-plane parameter bundle shared by /query
// and /topk: one parse point regardless of transport (GET URL parameters or
// POST JSON body), feeding one prsim.Request.
type apiRequest struct {
	graph        string
	sources      []int
	epsilon      float64
	k            int
	kSet         bool
	limit        int
	timeout      time.Duration
	noCache      bool
	parallel     int
	adaptive     prsim.AdaptiveMode
	class        prsim.Class
	allowPartial bool
}

// requestBodyJSON is the POST body shape of /query and /topk.
type requestBodyJSON struct {
	Graph       string  `json:"graph"`
	U           *int    `json:"u"`
	Sources     []int   `json:"sources"`
	Epsilon     float64 `json:"epsilon"`
	K           *int    `json:"k"`
	Limit       int     `json:"limit"`
	TimeoutMS   int64   `json:"timeout_ms"`
	NoCache     bool    `json:"no_cache"`
	Parallelism int     `json:"parallelism"`
	// Adaptive selects the sampling mode: "on" enables variance-based early
	// termination, "off" pins the fixed worst-case budget, ""/"auto" follows
	// the server's -adaptive default.
	Adaptive string `json:"adaptive"`
	Class    string `json:"class"`
	// AllowPartial opts multi-source requests against remote graphs into
	// graceful degradation: unreachable shards drop out and the response is
	// flagged degraded instead of failing with 503.
	AllowPartial bool `json:"allow_partial"`
}

// parseAPIRequest decodes the request-plane knobs from either transport.
func parseAPIRequest(r *http.Request) (apiRequest, error) {
	var req apiRequest
	if r.Method == http.MethodPost {
		var body requestBodyJSON
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			return req, fmt.Errorf("invalid JSON body: %v", err)
		}
		req.graph = body.Graph
		if body.U != nil {
			req.sources = append(req.sources, *body.U)
		}
		req.sources = append(req.sources, body.Sources...)
		req.epsilon = body.Epsilon
		if body.K != nil {
			req.k, req.kSet = *body.K, true
		}
		req.limit = body.Limit
		req.timeout = time.Duration(body.TimeoutMS) * time.Millisecond
		req.noCache = body.NoCache
		req.parallel = body.Parallelism
		ad, err := parseAdaptive(body.Adaptive)
		if err != nil {
			return req, err
		}
		req.adaptive = ad
		class, err := prsim.ParseClass(body.Class)
		if err != nil {
			return req, err
		}
		req.class = class
		req.allowPartial = body.AllowPartial
		return req, nil
	}
	q := r.URL.Query()
	req.graph = q.Get("graph")
	sources, err := intParams(q["u"])
	if err != nil {
		return req, fmt.Errorf("u must be an integer")
	}
	req.sources = sources
	if v := q.Get("epsilon"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("epsilon must be a number")
		}
		req.epsilon = eps
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("k must be an integer")
		}
		req.k, req.kSet = k, true
	}
	if req.limit, err = intParam(q.Get("limit"), 0); err != nil {
		return req, fmt.Errorf("limit must be an integer")
	}
	ms, err := intParam(q.Get("timeout_ms"), 0)
	if err != nil {
		return req, fmt.Errorf("timeout_ms must be an integer")
	}
	req.timeout = time.Duration(ms) * time.Millisecond
	if v := q.Get("nocache"); v != "" && v != "0" && v != "false" {
		req.noCache = true
	}
	if req.parallel, err = intParam(q.Get("parallel"), 0); err != nil {
		return req, fmt.Errorf("parallel must be an integer")
	}
	if req.adaptive, err = parseAdaptive(q.Get("adaptive")); err != nil {
		return req, err
	}
	if req.class, err = prsim.ParseClass(q.Get("class")); err != nil {
		return req, err
	}
	if v := q.Get("allow_partial"); v != "" && v != "0" && v != "false" {
		req.allowPartial = true
	}
	return req, nil
}

// parseAdaptive maps the wire spelling of the sampling mode onto the
// tri-state request field; empty (or "auto") defers to the server default.
func parseAdaptive(v string) (prsim.AdaptiveMode, error) {
	switch v {
	case "", "auto":
		return prsim.AdaptiveAuto, nil
	case "on", "true", "1":
		return prsim.AdaptiveOn, nil
	case "off", "false", "0":
		return prsim.AdaptiveOff, nil
	default:
		return prsim.AdaptiveAuto, fmt.Errorf("adaptive must be one of on, off, auto")
	}
}

// effectiveParallel resolves the intra-query parallelism hint: the
// per-request value wins, then the -parallel server default; zero is left for
// the engine to resolve as auto (borrow idle workers). The hint never changes
// scores — chunk decomposition and merge order are parallelism-independent —
// so it is safe to vary per request against a shared cache.
func (s *server) effectiveParallel(req apiRequest) int {
	if req.parallel > 0 {
		return req.parallel
	}
	return s.cfg.parallel
}

// baseRequest lowers the decoded knobs into the library request bundle.
func (s *server) baseRequest(api apiRequest) prsim.Request {
	return prsim.Request{
		Epsilon:      api.epsilon,
		NoCache:      api.noCache,
		Parallelism:  s.effectiveParallel(api),
		Adaptive:     api.adaptive,
		Class:        api.class,
		AllowPartial: api.allowPartial,
	}
}

// scoredNodeJSON is one (node, score) pair in a response.
type scoredNodeJSON struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// queryResultJSON is the answer to one single-source query. Batch entries
// deliberately carry no cache/coalescing flags: duplicate sources in one
// batch must render byte-identically (the flags live on the single-source
// and /topk envelopes instead).
type queryResultJSON struct {
	Source  int              `json:"source"`
	Support int              `json:"support"` // number of non-zero scores
	Scores  []scoredNodeJSON `json:"scores"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	api, err := parseAPIRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	sv, _, ok := s.servedFor(w, r, api.graph)
	if !ok {
		return
	}
	if len(api.sources) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "at least one source is required (u parameter or JSON u/sources)")
		return
	}
	if api.limit < 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "limit must be a non-negative integer")
		return
	}
	ctx, cancel := s.requestCtx(r, api.timeout)
	defer cancel()
	batch, err := sv.DoBatch(ctx, s.baseRequest(api), api.sources)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	resps := batch.Responses
	// A single-source request has nothing to return when its one shard is
	// missing — degrade to the fail-fast shape even under allow_partial.
	if len(api.sources) == 1 && (len(resps) == 0 || resps[0] == nil) {
		writeError(w, http.StatusServiceUnavailable, codeShardUnavailable,
			fmt.Sprintf("shard(s) %v unavailable", batch.MissingShards))
		return
	}
	// Degraded batches render missing sources as null entries; the envelope
	// carries the degradation flag and the missing shard list.
	out := make([]*queryResultJSON, len(resps))
	var epsilon float64
	var clamped bool
	for i, resp := range resps {
		if resp == nil {
			continue
		}
		rr := renderResult(resp.Result, api.limit)
		out[i] = &rr
		if epsilon == 0 {
			epsilon, clamped = resp.Epsilon, resp.Clamped
		}
	}
	if len(api.sources) == 1 {
		one := struct {
			queryResultJSON
			Epsilon float64 `json:"epsilon"`
			// EpsilonEffective is the epsilon the answering computation ran
			// at — tighter than epsilon when range coalescing served this
			// request from a more accurate cached or in-flight answer.
			EpsilonEffective  float64 `json:"epsilon_effective"`
			Clamped           bool    `json:"epsilon_clamped,omitempty"`
			Cached            bool    `json:"cached,omitempty"`
			Coalesced         bool    `json:"coalesced,omitempty"`
			ServedFromTighter bool    `json:"served_from_tighter,omitempty"`
		}{*out[0], epsilon, resps[0].EpsilonServed, clamped,
			resps[0].CacheHit, resps[0].Coalesced, resps[0].ServedFromTighter}
		writeJSON(w, one)
		return
	}
	payload := map[string]any{"results": out, "epsilon": epsilon, "epsilon_clamped": clamped}
	if batch.Degraded {
		payload["degraded"] = true
		payload["missing_shards"] = batch.MissingShards
	}
	writeJSON(w, payload)
}

// renderResult flattens a result into descending-score order, source first
// (its self-similarity is 1, the maximum), keeping at most limit nodes when
// limit > 0. Results may be shared with concurrent requests through the
// engine's cache, so this reads the result without mutating it.
func renderResult(res *prsim.Result, limit int) queryResultJSON {
	scores := res.Scores()
	nodes := make([]scoredNodeJSON, 0, len(scores))
	for v, sc := range scores {
		nodes = append(nodes, scoredNodeJSON{Node: v, Score: sc})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Score != nodes[j].Score {
			return nodes[i].Score > nodes[j].Score
		}
		return nodes[i].Node < nodes[j].Node
	})
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	return queryResultJSON{Source: res.Source(), Support: len(scores), Scores: nodes}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	api, err := parseAPIRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	sv, _, ok := s.servedFor(w, r, api.graph)
	if !ok {
		return
	}
	if len(api.sources) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "at least one non-negative source is required (u parameter or JSON u/sources)")
		return
	}
	for _, u := range api.sources {
		if u < 0 {
			writeError(w, http.StatusBadRequest, codeInvalidArgument, "sources must be non-negative")
			return
		}
	}
	k := 20
	if api.kSet {
		k = api.k
	}
	if k <= 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "k must be a positive integer")
		return
	}
	ctx, cancel := s.requestCtx(r, api.timeout)
	defer cancel()
	if len(api.sources) > 1 {
		// Multi-source: per-source top-k on the owning shards, merged into
		// one global selection (max score per node, deterministic order).
		res, err := sv.TopKMerged(ctx, s.baseRequest(api), api.sources, k)
		if err != nil {
			writeQueryError(w, err)
			return
		}
		payload := map[string]any{
			"sources": api.sources, "k": k, "top": renderScored(res.Top),
		}
		if res.Degraded {
			payload["degraded"] = true
			payload["missing_shards"] = res.MissingShards
		}
		writeJSON(w, payload)
		return
	}
	u := api.sources[0]
	base := s.baseRequest(api)
	base.Source = u
	base.K = k
	resp, err := sv.Do(ctx, base)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	payload := map[string]any{
		"source": u, "k": k, "top": renderScored(resp.Top),
		"epsilon": resp.Epsilon, "epsilon_effective": resp.EpsilonServed,
		"epsilon_clamped": resp.Clamped,
		"cached":          resp.CacheHit, "coalesced": resp.Coalesced,
	}
	if resp.ServedFromTighter {
		payload["served_from_tighter"] = true
	}
	writeJSON(w, payload)
}

func renderScored(top []prsim.ScoredNode) []scoredNodeJSON {
	nodes := make([]scoredNodeJSON, len(top))
	for i, t := range top {
		nodes[i] = scoredNodeJSON{Node: t.Node, Label: t.Label, Score: t.Score}
	}
	return nodes
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := intParam(q.Get("u"), -1)
	v, errV := intParam(q.Get("v"), -1)
	if errU != nil || errV != nil || u < 0 || v < 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "integer u and v parameters are required")
		return
	}
	sv, _, ok := s.servedFor(w, r, q.Get("graph"))
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	score, err := sv.Pair(ctx, u, v)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, map[string]any{"u": u, "v": v, "score": score})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	if name == "" {
		name = prsim.DefaultGraph
	}
	if name == prsim.DefaultGraph {
		// The default graph reloads through the watcher's bookkeeping (file
		// identity, load timing) and requires an on-disk snapshot.
		if s.cfg.loadIndex == "" {
			writeError(w, http.StatusConflict, codeConflict, "no -loadindex snapshot to reload (index was built at startup)")
			return
		}
		info, err := s.reload()
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
		writeJSON(w, map[string]any{
			"status":        "reloaded",
			"graph":         name,
			"generation":    info.generation,
			"backing":       info.backing,
			"graph_backing": info.graphBacking,
			"load_seconds":  info.loadTime.Seconds(),
		})
		return
	}
	sv, err := s.reg.Get(name)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if sv.Remote() {
		writeError(w, http.StatusConflict, codeConflict,
			fmt.Sprintf("graph %q is remote: reload it on its shard hosts", name))
		return
	}
	// Serialize with edge mutations on this graph and re-read the delta base
	// afterwards (the reload may have picked up an externally republished
	// snapshot with fresh gens).
	m := s.mutatorFor(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	loadStart := time.Now()
	if err := sv.Reload(nil); err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		return
	}
	m.refreshBase()
	idx := sv.Current()
	writeJSON(w, map[string]any{
		"status":        "reloaded",
		"graph":         name,
		"generation":    sv.Generation(),
		"backing":       idx.Backing(),
		"graph_backing": idx.GraphBacking(),
		"load_seconds":  time.Since(loadStart).Seconds(),
	})
}

// mountBodyJSON is the PUT /v1/graphs/{name} body. Exactly one of snapshot
// (a local snapshot file to serve) or placement (remote shard placement:
// one replica endpoint list per shard slot) is required; the remaining
// fields shape local serving (shards/workers/cache/max_queue, defaulting to
// the server flags) or the remote resilience layer.
type mountBodyJSON struct {
	Snapshot string `json:"snapshot"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`
	Cache    *int   `json:"cache"`
	MaxQueue *int   `json:"max_queue"`

	// Remote placement: one replica endpoint list per shard slot.
	Placement [][]string `json:"placement"`
	// RemoteGraph is the graph name on the shard hosts (default: the name
	// being mounted here).
	RemoteGraph string `json:"remote_graph"`
	// Resilience knobs; zero values pick production defaults.
	HealthIntervalMS  int64 `json:"health_interval_ms"`
	MaxAttempts       int   `json:"max_attempts"`
	HedgeDelayMS      int64 `json:"hedge_delay_ms"`
	AttemptTimeoutMS  int64 `json:"attempt_timeout_ms"`
	BreakerThreshold  int   `json:"breaker_threshold"`
	BreakerCooldownMS int64 `json:"breaker_cooldown_ms"`
}

// remoteConfig lowers the mount body's remote placement into the library
// configuration, wiring the test transport override.
func (b mountBodyJSON) remoteConfig(name string) prsim.RemoteGraphConfig {
	remoteGraph := b.RemoteGraph
	if remoteGraph == "" {
		remoteGraph = name
	}
	return prsim.RemoteGraphConfig{
		Graph:     remoteGraph,
		Shards:    b.Placement,
		Transport: remoteTransport,
		Resilience: prsim.ResilienceOptions{
			HealthInterval:   time.Duration(b.HealthIntervalMS) * time.Millisecond,
			MaxAttempts:      b.MaxAttempts,
			HedgeDelay:       time.Duration(b.HedgeDelayMS) * time.Millisecond,
			AttemptTimeout:   time.Duration(b.AttemptTimeoutMS) * time.Millisecond,
			BreakerThreshold: b.BreakerThreshold,
			BreakerCooldown:  time.Duration(b.BreakerCooldownMS) * time.Millisecond,
		},
	}
}

// mountRemote mounts a remote-placement graph and writes the mount
// response; shared by the admin endpoint and the boot-time shard map.
func (s *server) mountRemote(name string, body mountBodyJSON) (*prsim.Served, error) {
	if name == prsim.DefaultGraph {
		return nil, fmt.Errorf("the default graph is served locally (placement mounts need another name)")
	}
	for i, endpoints := range body.Placement {
		if len(endpoints) == 0 {
			return nil, fmt.Errorf("placement shard %d has no endpoints", i)
		}
		for _, ep := range endpoints {
			if !strings.HasPrefix(ep, "http://") && !strings.HasPrefix(ep, "https://") {
				return nil, fmt.Errorf("placement shard %d endpoint %q is not an http(s) base URL", i, ep)
			}
		}
	}
	return s.reg.MountRemote(name, body.remoteConfig(name))
}

// shardMapJSON is the -shardmap file: remote graphs to mount at boot, keyed
// by name, each a mount body restricted to the placement fields.
type shardMapJSON struct {
	Graphs map[string]mountBodyJSON `json:"graphs"`
}

// mountShardMap mounts every remote graph named by the -shardmap file.
func (s *server) mountShardMap(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sm shardMapJSON
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sm); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	// Mount in sorted order so boot logs and failures are deterministic.
	names := make([]string, 0, len(sm.Graphs))
	for name := range sm.Graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		body := sm.Graphs[name]
		if !validGraphName(name) {
			return fmt.Errorf("%s: invalid graph name %q", path, name)
		}
		if len(body.Placement) == 0 {
			return fmt.Errorf("%s: graph %q has no placement (shard maps mount remote graphs; local graphs use -loadindex or the admin API)", path, name)
		}
		if body.Snapshot != "" {
			return fmt.Errorf("%s: graph %q sets both snapshot and placement", path, name)
		}
		sv, err := s.mountRemote(name, body)
		if err != nil {
			return fmt.Errorf("%s: graph %q: %w", path, name, err)
		}
		log.Printf("prsimserve: mounted remote graph %q (%d shards)", name, sv.NumShards())
	}
	return nil
}

func (s *server) handleMount(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	if !validGraphName(name) {
		writeError(w, http.StatusBadRequest, codeInvalidArgument,
			"graph names are 1-64 characters of [a-zA-Z0-9._-]")
		return
	}
	var body mountBodyJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, fmt.Sprintf("invalid JSON body: %v", err))
		return
	}
	if body.Snapshot != "" && len(body.Placement) > 0 {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "snapshot and placement are mutually exclusive")
		return
	}
	if len(body.Placement) > 0 {
		sv, err := s.mountRemote(name, body)
		if err != nil {
			status, code := http.StatusBadRequest, codeInvalidArgument
			if strings.Contains(err.Error(), "already mounted") {
				status, code = http.StatusConflict, codeConflict
			}
			writeError(w, status, code, err.Error())
			return
		}
		log.Printf("prsimserve: mounted remote graph %q (%d shards)", name, sv.NumShards())
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, map[string]any{
			"status": "mounted",
			"graph":  name,
			"shards": sv.NumShards(),
			"remote": true,
		})
		return
	}
	if body.Snapshot == "" {
		writeError(w, http.StatusBadRequest, codeInvalidArgument, "snapshot (a self-contained snapshot file path) or placement (remote shard endpoints) is required")
		return
	}
	cfg := prsim.GraphConfig{
		Shards: body.Shards,
		Engine: prsim.EngineOptions{
			Workers:         body.Workers,
			CacheSize:       s.cfg.cacheSize,
			MaxQueue:        s.cfg.maxQueue,
			AdaptiveDefault: s.cfg.adaptive,
		},
	}
	if body.Cache != nil {
		cfg.Engine.CacheSize = *body.Cache
	}
	if body.MaxQueue != nil {
		cfg.Engine.MaxQueue = *body.MaxQueue
	}
	// Mount through the delta-aware opener so a graph whose snapshot has a
	// published edge-update delta next to it comes up at the updated state
	// (and reloads keep picking the pair up).
	sv, err := s.reg.MountOpener(name, cfg, func() (*prsim.Index, error) {
		return openSnapshotAuto(body.Snapshot)
	})
	if err != nil {
		status, code := http.StatusInternalServerError, codeInternal
		if strings.Contains(err.Error(), "already mounted") {
			status, code = http.StatusConflict, codeConflict
		}
		writeError(w, status, code, err.Error())
		return
	}
	s.mountMutator(name, body.Snapshot)
	idx := sv.Current()
	log.Printf("prsimserve: mounted graph %q from %s (%d nodes, %d shards)",
		name, body.Snapshot, idx.Graph().NumNodes(), sv.NumShards())
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{
		"status": "mounted",
		"graph":  name,
		"shards": sv.NumShards(),
		"nodes":  idx.Graph().NumNodes(),
		"edges":  idx.Graph().NumEdges(),
	})
}

func (s *server) handleUnmount(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("graph")
	if name == prsim.DefaultGraph {
		writeError(w, http.StatusConflict, codeConflict,
			"the default graph cannot be unmounted (the watch/verify loops serve it)")
		return
	}
	if err := s.reg.Unmount(name); err != nil {
		writeQueryError(w, err)
		return
	}
	s.dropMutator(name)
	log.Printf("prsimserve: unmounted graph %q", name)
	writeJSON(w, map[string]any{"status": "unmounted", "graph": name})
}

func (s *server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	graphs := make([]map[string]any, 0, len(names))
	for _, name := range names {
		sv, err := s.reg.Get(name)
		if err != nil {
			continue // unmounted between Names and Get
		}
		entry := map[string]any{
			"name":       name,
			"generation": sv.Generation(),
			"shards":     sv.NumShards(),
		}
		if idx := sv.Current(); idx != nil {
			entry["nodes"] = idx.Graph().NumNodes()
			entry["edges"] = idx.Graph().NumEdges()
			entry["backing"] = idx.Backing()
		} else {
			entry["remote"] = true
		}
		graphs = append(graphs, entry)
	}
	writeJSON(w, map[string]any{"graphs": graphs})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

func (s *server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	sv, name, ok := s.servedFor(w, r, r.URL.Query().Get("graph"))
	if !ok {
		return
	}
	writeJSON(w, s.graphStatsPayload(sv, name))
}

// graphStatsPayload renders one graph's statistics. The default graph
// additionally carries the snapshot watch/verify sections — that machinery
// is wired to the boot-time snapshot file.
func (s *server) graphStatsPayload(sv *prsim.Served, name string) map[string]any {
	if sv.Remote() {
		// Remote graphs have no local index: report the client-side view —
		// aggregated call counters, per-shard resilience counters, and the
		// replica health map. Index/graph statistics live on the shard hosts.
		est := sv.StatsAggregate()
		return map[string]any{
			"uptime_seconds": time.Since(s.start).Seconds(),
			"name":           name,
			"remote":         true,
			"generation":     est.Generation,
			"engine": map[string]any{
				"shards":       sv.NumShards(),
				"queries":      est.Queries,
				"pair_queries": est.PairQueries,
				"errors":       est.Errors,
			},
			"shards": remoteShardStatsJSON(sv),
			"health": healthJSON(sv.Health()),
		}
	}
	idx := sv.Current()
	g := idx.Graph()
	ist := idx.Stats()
	est := sv.StatsAggregate()

	// engine holds numeric totals only (monitoring scrapes decode it as a
	// flat number map); per-class and per-shard breakdowns get their own
	// keys.
	payload := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"name":           name,
		"graph": map[string]any{
			"nodes":   g.NumNodes(),
			"edges":   g.NumEdges(),
			"backing": idx.GraphBacking(),
		},
		"index": map[string]any{
			"hubs":          ist.NumHubs,
			"entries":       ist.Entries,
			"size_bytes":    idx.SizeBytes(),
			"second_moment": ist.SecondMoment,
			"backing":       idx.Backing(),
			"madvise":       idx.Advices(),
		},
		"engine": map[string]any{
			"shards":        sv.NumShards(),
			"workers":       est.Workers,
			"max_queue":     est.MaxQueue,
			"queue_depth":   est.QueueDepth,
			"queries":       est.Queries,
			"cache_hits":    est.CacheHits,
			"cache_entries": est.CacheEntries,
			"cache_reuses":  est.CacheReuses,
			"coalesced":     est.Coalesced,
			"shed":          est.Shed,
			"pair_queries":  est.PairQueries,
			"errors":        est.Errors,

			"parallel_default": s.cfg.parallel,
			"parallel_queries": est.ParallelQueries,
			"chunks_executed":  est.ChunksExecuted,
			"chunks_merged":    est.ChunksMerged,

			"range_coalesced": est.RangeCoalesced,
			"early_stops":     est.EarlyStops,
			"rounds_executed": est.RoundsExecuted,
			"rounds_budget":   est.RoundsBudget,
		},
		"classes": map[string]any{
			"interactive": classStatsJSON(est.Interactive),
			"batch":       classStatsJSON(est.Batch),
		},
		"shards":    shardStatsJSON(sv.Stats()),
		"health":    healthJSON(sv.Health()),
		"mutations": s.mutatorFor(name).statsJSON(),
	}
	payload["index"].(map[string]any)["update_generation"] = idx.Generation()
	if name != prsim.DefaultGraph {
		payload["generation"] = est.Generation
		return payload
	}
	s.reloadMu.Lock()
	lastLoad := s.lastLoadTime
	lastLoadAt := s.lastLoadAt
	s.reloadMu.Unlock()
	payload["index"].(map[string]any)["load_seconds"] = lastLoad.Seconds()
	payload["snapshot"] = map[string]any{
		"path":           s.cfg.loadIndex,
		"generation":     est.Generation,
		"swaps":          est.Swaps,
		"last_load_at":   lastLoadAt.UTC().Format(time.RFC3339),
		"watch_seconds":  s.cfg.watch.Seconds(),
		"self_contained": s.g == nil,
	}
	s.verifyMu.Lock()
	verify := map[string]any{
		"every_seconds": s.cfg.verifyEvery.Seconds(),
		"runs":          s.verifies,
		"rolled_back":   s.rolledBack,
	}
	if s.verifies > 0 {
		verify["last_at"] = s.lastVerifyAt.UTC().Format(time.RFC3339)
		verify["last_seconds"] = s.lastVerifyDur.Seconds()
		verify["last_generation"] = s.lastVerifyGen
		verify["last_ok"] = s.lastVerifyErr == nil
		if s.lastVerifyErr != nil {
			verify["last_error"] = s.lastVerifyErr.Error()
		}
	}
	s.verifyMu.Unlock()
	payload["verify"] = verify
	return payload
}

// classStatsJSON renders one admission class's telemetry, including the
// observed mean service time the deadline shedding and Retry-After hints
// derive from.
func classStatsJSON(c prsim.ClassStats) map[string]any {
	return map[string]any{
		"queries":        c.Queries,
		"shed":           c.Shed,
		"queue_depth":    c.QueueDepth,
		"avg_service_ms": float64(c.AvgServiceNs) / 1e6,
	}
}

// remoteShardStatsJSON renders the client-side resilience counters of every
// remote shard: attempts vs calls shows retry/hedge amplification, failures
// count calls that exhausted every replica.
func remoteShardStatsJSON(sv *prsim.Served) []map[string]any {
	out := make([]map[string]any, sv.NumShards())
	for i := range out {
		st, _ := sv.RemoteStats(i)
		out[i] = map[string]any{
			"shard":      i,
			"calls":      st.Calls,
			"attempts":   st.Attempts,
			"retries":    st.Retries,
			"hedges":     st.Hedges,
			"hedge_wins": st.HedgeWins,
			"failures":   st.Failures,
		}
	}
	return out
}

// healthJSON renders a graph's shard health map.
func healthJSON(shards []prsim.ShardHealth) []map[string]any {
	out := make([]map[string]any, len(shards))
	for i, sh := range shards {
		entry := map[string]any{
			"shard":  sh.Shard,
			"remote": sh.Remote,
			"state":  sh.State.String(),
		}
		if sh.Remote {
			replicas := make([]map[string]any, len(sh.Replicas))
			for j, rep := range sh.Replicas {
				replicas[j] = map[string]any{
					"endpoint":             rep.Endpoint,
					"state":                rep.State.String(),
					"consecutive_failures": rep.ConsecutiveFailures,
					"breaker_open":         rep.BreakerOpen,
					"breaker_opens":        rep.BreakerOpens,
					"generation":           rep.Generation,
					"probes":               rep.Probes,
					"probe_failures":       rep.ProbeFailures,
					"ewma_latency_ms":      float64(rep.EWMALatency) / float64(time.Millisecond),
					"hedge_delay_ms":       float64(rep.HedgeDelay) / float64(time.Millisecond),
				}
			}
			entry["replicas"] = replicas
		}
		out[i] = entry
	}
	return out
}

// handleGraphHealth reports the per-shard health map of one graph — for
// remote graphs, the live replica states the router routes around
// (breakers, probe failures, observed generations). Admin-gated: the map
// exposes internal endpoints.
func (s *server) handleGraphHealth(w http.ResponseWriter, r *http.Request) {
	sv, name, ok := s.servedFor(w, r, r.URL.Query().Get("graph"))
	if !ok {
		return
	}
	writeJSON(w, map[string]any{
		"graph":  name,
		"remote": sv.Remote(),
		"shards": healthJSON(sv.Health()),
	})
}

// shardStatsJSON renders the per-shard breakdown (queries, cache activity,
// shed) so uneven source distributions are visible to operators.
func shardStatsJSON(stats []prsim.EngineStats) []map[string]any {
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		out[i] = map[string]any{
			"shard":       i,
			"queries":     st.Queries,
			"cache_hits":  st.CacheHits,
			"coalesced":   st.Coalesced,
			"shed":        st.Shed,
			"queue_depth": st.QueueDepth,
			"errors":      st.Errors,
		}
	}
	return out
}

func (s *server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	graphs := make(map[string]any, len(names))
	for _, name := range names {
		sv, err := s.reg.Get(name)
		if err != nil {
			continue
		}
		est := sv.StatsAggregate()
		graphs[name] = map[string]any{
			"generation":  sv.Generation(),
			"shards":      sv.NumShards(),
			"queries":     est.Queries,
			"shed":        est.Shed,
			"queue_depth": est.QueueDepth,
			"errors":      est.Errors,
		}
	}
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"graphs":         graphs,
	})
}

// validGraphName bounds admin-supplied graph names to a filesystem- and
// URL-safe alphabet.
func validGraphName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// requestCtx derives the request's deadline: the server's -timeout ceiling,
// shortened by a positive per-request timeout (timeout_ms). Requests cannot
// extend past the ceiling — the listener's WriteTimeout is sized to it.
func (s *server) requestCtx(r *http.Request, reqTimeout time.Duration) (ctx context.Context, cancel func()) {
	timeout := s.timeout
	if reqTimeout > 0 && reqTimeout < timeout {
		timeout = reqTimeout
	}
	return context.WithTimeout(r.Context(), timeout)
}

// Error codes of the unified error envelope. Every error response is
// {"error":{"code":..., "message":..., "retry_after_ms":...}}; the code set
// is part of the API surface (pinned by the surface snapshot test).
const (
	codeOverloaded       = "overloaded"
	codeInvalidNode      = "invalid_node"
	codeInvalidEpsilon   = "invalid_epsilon"
	codeInvalidArgument  = "invalid_argument"
	codeDeadlineExceeded = "deadline_exceeded"
	codeUnknownGraph     = "unknown_graph"
	codeConflict         = "conflict"
	codeInternal         = "internal"
	codeUnauthorized     = "unauthorized"
	codeShardUnavailable = "shard_unavailable"
)

// errorJSON is the unified error envelope body.
type errorJSON struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeQueryError maps library errors to the envelope: bad node ids and bad
// per-request epsilons are the client's fault, unknown graphs are 404, shed
// requests are 429 with the admission queue's telemetry-derived Retry-After,
// timeouts are 504, everything else is a server-side failure.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, prsim.ErrOverloaded):
		// The engine predicts when the shed request's class drains; before
		// any telemetry exists, fall back to a fixed 1s hint.
		ra, _ := prsim.RetryAfter(err)
		if ra <= 0 {
			ra = time.Second
		}
		seconds := int(math.Ceil(ra.Seconds()))
		if seconds < 1 {
			seconds = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(seconds))
		writeErrorEnvelope(w, http.StatusTooManyRequests, errorJSON{
			Code: codeOverloaded, Message: err.Error(), RetryAfterMS: ra.Milliseconds(),
		})
	case errors.Is(err, prsim.ErrUnknownGraph):
		writeError(w, http.StatusNotFound, codeUnknownGraph, err.Error())
	case errors.Is(err, prsim.ErrShardUnavailable):
		// A remote shard could not be reached past its retries and breaker.
		// 503 tells clients the failure is on the serving side and transient;
		// multi-source requests can opt into partial results instead with
		// allow_partial.
		writeError(w, http.StatusServiceUnavailable, codeShardUnavailable, err.Error())
	case errors.Is(err, prsim.ErrInvalidNode):
		writeError(w, http.StatusBadRequest, codeInvalidNode, err.Error())
	case errors.Is(err, prsim.ErrInvalidEpsilon):
		writeError(w, http.StatusBadRequest, codeInvalidEpsilon, err.Error())
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, codeDeadlineExceeded, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("prsimserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorEnvelope(w, status, errorJSON{Code: code, Message: msg})
}

func writeErrorEnvelope(w http.ResponseWriter, status int, e errorJSON) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]errorJSON{"error": e})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func intParams(ss []string) ([]int, error) {
	out := make([]int, 0, len(ss))
	for _, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
