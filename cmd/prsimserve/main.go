// Command prsimserve serves PRSim single-source SimRank queries over HTTP
// with JSON responses. It loads a graph and (preferably) a previously saved
// index at startup, then answers query traffic through the concurrent engine:
// a bounded worker pool with an optional LRU result cache.
//
// Usage:
//
//	prsimquery -graph graph.txt -saveindex idx.prsim          # build once
//	prsimserve -loadindex idx.prsim -addr :8080               # self-contained v3
//	prsimserve -loadindex idx.prsim -watch 2s                 # hot reload on change
//	prsimserve -graph graph.txt -loadindex idx.prsim -mmap    # v1/v2, zero-copy
//	prsimserve -dataset DB -epsilon 0.1                       # build at startup
//
// A self-contained v3 snapshot needs no -graph flag: the graph's CSR
// adjacency (and label table) are embedded in the file and mapped zero-copy
// alongside the index. With -mmap the saved index is memory-mapped instead of
// parsed: startup cost is independent of index size and concurrent server
// processes mapping the same file share one page cache. /stats reports the
// backing mode of both index and graph.
//
// Hot reload: with -watch the snapshot file's mtime is polled and a change
// atomically swaps in the re-opened snapshot without dropping in-flight
// requests (the old mapping is unmapped only after they drain, and the
// result cache is invalidated). POST /reload triggers the same swap on
// demand. /stats reports the snapshot generation, which increments per swap.
//
// Endpoints:
//
//	GET  /query?u=3           single-source query (repeat u for a batch;
//	                          ?limit=N caps the nodes returned per source)
//	GET  /topk?u=3&k=20       k most similar nodes to u
//	GET  /pair?u=3&v=5        single-pair SimRank s(u, v)
//	POST /reload              re-open the snapshot and swap it in
//	GET  /healthz             liveness probe
//	GET  /stats               graph, index and engine statistics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"prsim"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file to load (not needed for self-contained v3 snapshots)")
	flag.StringVar(&cfg.dataset, "dataset", "", "benchmark dataset stand-in to generate (DB, LJ, IT, TW, UK)")
	flag.StringVar(&cfg.loadIndex, "loadindex", "", "saved index file to load (skips preprocessing)")
	flag.BoolVar(&cfg.mmap, "mmap", false, "open -loadindex as a zero-copy mmap snapshot (near-instant start, shared page cache)")
	flag.BoolVar(&cfg.mmapVerify, "mmapverify", false, "with -mmap, verify the snapshot checksum at startup (reads the whole file once)")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll -loadindex for changes at this interval and hot-swap on change (0 disables)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.1, "additive error target when building an index")
	flag.Float64Var(&cfg.decay, "decay", prsim.DefaultDecay, "SimRank decay factor c")
	flag.Float64Var(&cfg.scale, "samplescale", 1.0, "Monte Carlo sample scale (1.0 = paper constants)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.maxLevels, "maxlevels", 0, "cap on walk levels (0 = default 64)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent query workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cacheSize, "cache", 1024, "LRU result cache size (0 disables)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline")
	flag.Parse()

	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
	idx := srv.eng.Current()
	log.Printf("prsimserve: graph %d nodes / %d edges (%s-backed), %d hubs (%s-backed, ready in %s), %d workers, listening on %s",
		idx.Graph().NumNodes(), idx.Graph().NumEdges(), idx.GraphBacking(), idx.NumHubs(),
		idx.Backing(), srv.loadTime.Round(time.Millisecond), srv.eng.Workers(), cfg.addr)
	if cfg.watch > 0 {
		go srv.watch(cfg.watch)
		log.Printf("prsimserve: watching %s every %s for hot reload", cfg.loadIndex, cfg.watch)
	}
	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.handler(),
		// Guard the listener against stalled clients: bound header reads and
		// idle keep-alives, and cap response writes a little past the
		// per-request query deadline.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	graphPath, dataset string
	loadIndex          string
	mmap, mmapVerify   bool
	watch              time.Duration
	epsilon, decay     float64
	scale              float64
	seed               uint64
	maxLevels          int
	workers, cacheSize int
	addr               string
	timeout            time.Duration
}

// server holds the engine serving the (swappable) index; its handler is
// separable from the listener so tests can drive it through httptest.
type server struct {
	cfg      config
	g        *prsim.Graph // startup graph; nil when serving a self-contained snapshot
	eng      *prsim.Engine
	start    time.Time
	timeout  time.Duration
	loadTime time.Duration // time to load/build the index at startup

	// reloadMu serializes reloads (manual and watcher-triggered); queries
	// never take it. The fields below it record the last successful load.
	reloadMu     sync.Mutex
	lastLoadTime time.Duration
	lastLoadAt   time.Time
	watchedMod   time.Time
	watchedSize  int64

	// stop ends the watch loop (used by tests; main lets it run forever).
	stop chan struct{}
}

// buildServer loads the graph (unless the snapshot is self-contained), loads
// or builds the index, and wires up the engine.
func buildServer(cfg config) (*server, error) {
	var g *prsim.Graph
	var err error
	switch {
	case cfg.graphPath != "":
		g, err = prsim.LoadGraphFile(cfg.graphPath)
	case cfg.dataset != "":
		g, err = prsim.LoadDataset(cfg.dataset)
	case cfg.loadIndex != "":
		// Self-contained snapshot: the graph comes out of the file itself.
	default:
		return nil, fmt.Errorf("specify -graph, -dataset, or a self-contained v3 -loadindex")
	}
	if err != nil {
		return nil, err
	}
	if cfg.watch > 0 && cfg.loadIndex == "" {
		return nil, fmt.Errorf("-watch requires -loadindex (a snapshot file to watch)")
	}

	// Capture the snapshot file's identity before opening it, mirroring
	// reload(): a file republished mid-open must trip the watcher later.
	startMod, startSize := statWatched(cfg.loadIndex)
	loadStart := time.Now()
	idx, err := openIndex(cfg, g)
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)
	eng, err := prsim.NewEngine(idx, prsim.EngineOptions{Workers: cfg.workers, CacheSize: cfg.cacheSize})
	if err != nil {
		return nil, err
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s := &server{
		cfg: cfg, g: g, eng: eng,
		start: time.Now(), timeout: timeout,
		loadTime: loadTime, lastLoadTime: loadTime, lastLoadAt: time.Now(),
		stop: make(chan struct{}),
	}
	s.watchedMod, s.watchedSize = startMod, startSize
	return s, nil
}

// openIndex loads, maps, or builds the index per the configuration. g may be
// nil only when loading a self-contained snapshot.
func openIndex(cfg config, g *prsim.Graph) (*prsim.Index, error) {
	switch {
	case cfg.loadIndex != "" && (cfg.mmap || g == nil):
		// Zero-copy snapshot open; with g == nil the graph is reconstructed
		// from the file (v3). Falls back to streaming on unsupported
		// platforms.
		idx, err := prsim.OpenSnapshot(cfg.loadIndex, g)
		if err == nil && cfg.mmapVerify {
			if verr := idx.Verify(); verr != nil {
				idx.Close()
				return nil, verr
			}
		}
		return idx, err
	case cfg.loadIndex != "":
		return prsim.LoadIndexFile(cfg.loadIndex, g)
	case cfg.mmap:
		return nil, fmt.Errorf("-mmap requires -loadindex (a saved snapshot file to map)")
	default:
		return prsim.BuildIndex(g, prsim.Options{
			Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed,
			SampleScale: cfg.scale, MaxLevels: cfg.maxLevels,
		})
	}
}

// reloadInfo summarizes one successful reload for the admin response; it is
// captured under reloadMu so handlers never read the mutable fields raw.
type reloadInfo struct {
	generation   uint64
	loadTime     time.Duration
	backing      string
	graphBacking string
}

// reload re-opens the snapshot file and hot-swaps it into the engine: new
// queries see the new index immediately, in-flight queries finish on the old
// one, the old mapping is released once they drain, and the result cache is
// invalidated (generation-keyed). Reloads are serialized; queries are never
// blocked by one.
func (s *server) reload() (reloadInfo, error) {
	if s.cfg.loadIndex == "" {
		return reloadInfo{}, fmt.Errorf("no -loadindex snapshot to reload (index was built at startup)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// Capture the file's identity BEFORE opening it: a snapshot renamed over
	// the path while this open is in progress must still look changed on the
	// next watch tick, or the watcher would serve the stale one forever.
	preMod, preSize := statWatched(s.cfg.loadIndex)
	loadStart := time.Now()
	idx, err := openIndex(s.cfg, s.g)
	if err != nil {
		return reloadInfo{}, fmt.Errorf("reload: %w", err)
	}
	old, err := s.eng.Swap(idx)
	if err != nil {
		idx.Close()
		return reloadInfo{}, fmt.Errorf("reload: %w", err)
	}
	s.lastLoadTime = time.Since(loadStart)
	s.lastLoadAt = time.Now()
	s.watchedMod, s.watchedSize = preMod, preSize
	// The old snapshot's unmap waits for drained queries via its refcount.
	if err := old.Close(); err != nil {
		log.Printf("prsimserve: closing swapped-out snapshot: %v", err)
	}
	info := reloadInfo{
		generation:   s.eng.Generation(),
		loadTime:     s.lastLoadTime,
		backing:      idx.Backing(),
		graphBacking: idx.GraphBacking(),
	}
	log.Printf("prsimserve: reloaded %s in %s (generation %d, index %s-backed, graph %s-backed)",
		s.cfg.loadIndex, info.loadTime.Round(time.Millisecond), info.generation,
		info.backing, info.graphBacking)
	return info, nil
}

// statWatched returns the snapshot file's identity (zero values when the
// path is empty or unreadable).
func statWatched(path string) (time.Time, int64) {
	if path == "" {
		return time.Time{}, 0
	}
	st, err := os.Stat(path)
	if err != nil {
		return time.Time{}, 0
	}
	return st.ModTime(), st.Size()
}

// changedSinceLastLoad reports whether the watched snapshot file's mtime or
// size moved since the last (re)load.
func (s *server) changedSinceLastLoad() bool {
	st, err := os.Stat(s.cfg.loadIndex)
	if err != nil {
		return false // transiently missing mid-rewrite; try again next tick
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return !st.ModTime().Equal(s.watchedMod) || st.Size() != s.watchedSize
}

// watch polls the snapshot file and reloads on change. Reload failures are
// logged and retried on the next change; the server keeps serving the old
// index (a half-written file simply fails validation and is skipped —
// publishers should still write-then-rename so a mapped file is never
// truncated in place).
func (s *server) watch(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if !s.changedSinceLastLoad() {
			continue
		}
		if _, err := s.reload(); err != nil {
			log.Printf("prsimserve: watch reload failed (still serving previous index): %v", err)
			// Remember the bad file's identity so a broken snapshot is not
			// retried every tick; the next write triggers a fresh attempt.
			s.reloadMu.Lock()
			s.watchedMod, s.watchedSize = statWatched(s.cfg.loadIndex)
			s.reloadMu.Unlock()
		}
	}
}

// handler builds the route table. Per-request deadlines come from requestCtx
// (every query path is context-cancellable), so timed-out requests get the
// same JSON error contract as every other failure.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /pair", s.handlePair)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// scoredNodeJSON is one (node, score) pair in a response.
type scoredNodeJSON struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// queryResultJSON is the answer to one single-source query.
type queryResultJSON struct {
	Source  int              `json:"source"`
	Support int              `json:"support"` // number of non-zero scores
	Scores  []scoredNodeJSON `json:"scores"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sources, err := intParams(q["u"])
	if err != nil || len(sources) == 0 {
		writeError(w, http.StatusBadRequest, "at least one integer u parameter is required")
		return
	}
	limit, err := intParam(q.Get("limit"), 0)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := s.eng.QueryBatch(ctx, sources)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([]queryResultJSON, len(results))
	for i, res := range results {
		out[i] = renderResult(res, limit)
	}
	if len(q["u"]) == 1 {
		writeJSON(w, out[0])
		return
	}
	writeJSON(w, map[string]any{"results": out})
}

// renderResult flattens a result into descending-score order, source first
// (its self-similarity is 1, the maximum), keeping at most limit nodes when
// limit > 0. Results may be shared with concurrent requests through the
// engine's cache, so this reads the result without mutating it.
func renderResult(res *prsim.Result, limit int) queryResultJSON {
	scores := res.Scores()
	nodes := make([]scoredNodeJSON, 0, len(scores))
	for v, sc := range scores {
		nodes = append(nodes, scoredNodeJSON{Node: v, Score: sc})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Score != nodes[j].Score {
			return nodes[i].Score > nodes[j].Score
		}
		return nodes[i].Node < nodes[j].Node
	})
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	return queryResultJSON{Source: res.Source(), Support: len(scores), Scores: nodes}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, err := intParam(q.Get("u"), -1)
	if err != nil || u < 0 {
		writeError(w, http.StatusBadRequest, "integer u parameter is required")
		return
	}
	k, err := intParam(q.Get("k"), 20)
	if err != nil || k <= 0 {
		writeError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	top, err := s.eng.TopK(ctx, u, k)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	nodes := make([]scoredNodeJSON, len(top))
	for i, t := range top {
		nodes[i] = scoredNodeJSON{Node: t.Node, Label: t.Label, Score: t.Score}
	}
	writeJSON(w, map[string]any{"source": u, "k": k, "top": nodes})
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := intParam(q.Get("u"), -1)
	v, errV := intParam(q.Get("v"), -1)
	if errU != nil || errV != nil || u < 0 || v < 0 {
		writeError(w, http.StatusBadRequest, "integer u and v parameters are required")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	score, err := s.eng.Pair(ctx, u, v)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, map[string]any{"u": u, "v": v, "score": score})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.loadIndex == "" {
		writeError(w, http.StatusConflict, "no -loadindex snapshot to reload (index was built at startup)")
		return
	}
	info, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{
		"status":        "reloaded",
		"generation":    info.generation,
		"backing":       info.backing,
		"graph_backing": info.graphBacking,
		"load_seconds":  info.loadTime.Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	idx := s.eng.Current()
	g := idx.Graph()
	ist := idx.Stats()
	est := s.eng.Stats()
	s.reloadMu.Lock()
	lastLoad := s.lastLoadTime
	lastLoadAt := s.lastLoadAt
	s.reloadMu.Unlock()
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"graph": map[string]any{
			"nodes":   g.NumNodes(),
			"edges":   g.NumEdges(),
			"backing": idx.GraphBacking(),
		},
		"index": map[string]any{
			"hubs":          ist.NumHubs,
			"entries":       ist.Entries,
			"size_bytes":    idx.SizeBytes(),
			"second_moment": ist.SecondMoment,
			"backing":       idx.Backing(),
			"load_seconds":  lastLoad.Seconds(),
		},
		"snapshot": map[string]any{
			"path":           s.cfg.loadIndex,
			"generation":     est.Generation,
			"swaps":          est.Swaps,
			"last_load_at":   lastLoadAt.UTC().Format(time.RFC3339),
			"watch_seconds":  s.cfg.watch.Seconds(),
			"self_contained": s.g == nil,
		},
		"engine": map[string]any{
			"workers":       est.Workers,
			"queries":       est.Queries,
			"cache_hits":    est.CacheHits,
			"cache_entries": est.CacheEntries,
			"pair_queries":  est.PairQueries,
			"errors":        est.Errors,
		},
	})
}

func (s *server) requestCtx(r *http.Request) (ctx context.Context, cancel func()) {
	return context.WithTimeout(r.Context(), s.timeout)
}

// writeQueryError maps engine errors to HTTP statuses: bad node ids are the
// client's fault, timeouts are 504, everything else is a server-side failure.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, prsim.ErrInvalidNode):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("prsimserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func intParams(ss []string) ([]int, error) {
	out := make([]int, 0, len(ss))
	for _, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
