// Command prsimserve serves PRSim single-source SimRank queries over HTTP
// with JSON responses. It loads a graph and (preferably) a previously saved
// index at startup, then answers query traffic through the concurrent engine:
// a bounded worker pool with an optional LRU result cache.
//
// Usage:
//
//	prsimquery -graph graph.txt -saveindex idx.prsim          # build once
//	prsimserve -loadindex idx.prsim -addr :8080               # self-contained v3
//	prsimserve -loadindex idx.prsim -watch 2s                 # hot reload on change
//	prsimserve -graph graph.txt -loadindex idx.prsim -mmap    # v1/v2, zero-copy
//	prsimserve -dataset DB -epsilon 0.1                       # build at startup
//
// A self-contained v3 snapshot needs no -graph flag: the graph's CSR
// adjacency (and label table) are embedded in the file and mapped zero-copy
// alongside the index. With -mmap the saved index is memory-mapped instead of
// parsed: startup cost is independent of index size and concurrent server
// processes mapping the same file share one page cache. /stats reports the
// backing mode of both index and graph.
//
// Hot reload: with -watch the snapshot file's mtime is polled and a change
// atomically swaps in the re-opened snapshot without dropping in-flight
// requests (the old mapping is unmapped only after they drain). The result
// cache is invalidated on swap unless the new snapshot serves an identical
// graph with identical options, in which case cached results are kept warm
// across the reload. POST /reload triggers the same swap on demand. /stats
// reports the snapshot generation, which increments per swap. With
// -verifyevery the snapshot's CRC-32C is re-verified in the background on a
// timer; the last verification outcome is logged and exposed in /stats. A
// failed verification triggers an automatic rollback: the snapshot path is
// re-opened and swapped in only if the fresh mapping verifies clean, else the
// server keeps serving the last-good generation (verify.rolled_back in /stats
// counts successful rollbacks).
//
// Request plane: every query endpoint accepts the same per-request knobs —
// epsilon (accuracy/latency trade, clamped up to the index's build epsilon),
// k (top-k selection), timeout_ms (per-request deadline, capped by -timeout),
// no_cache, and parallelism (intra-query walk-chunk fan-out; 0 inherits the
// -parallel server default, which itself defaults to auto = borrow idle
// workers) — as URL parameters on GET (the last as ?parallel=N) or as a JSON
// body on POST:
//
//	POST /query {"u": 3, "epsilon": 0.4, "timeout_ms": 500}
//	POST /query {"sources": [1, 2, 3], "epsilon": 0.4, "limit": 10}
//	POST /topk  {"u": 3, "k": 20, "no_cache": true}
//
// Responses echo the effective epsilon (and whether it was clamped). When the
// engine's bounded admission queue (-maxqueue) is full, requests are shed
// with 429 Too Many Requests and a Retry-After header instead of piling up.
//
// Endpoints:
//
//	GET  /query?u=3           single-source query (repeat u for a batch;
//	                          ?limit=N caps the nodes returned per source;
//	                          &epsilon=0.4&timeout_ms=500&nocache=1)
//	POST /query               same, JSON body (see above)
//	GET  /topk?u=3&k=20       k most similar nodes to u
//	POST /topk                same, JSON body
//	GET  /pair?u=3&v=5        single-pair SimRank s(u, v)
//	POST /reload              re-open the snapshot and swap it in
//	GET  /healthz             liveness probe
//	GET  /stats               graph, index, engine and verify statistics
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"prsim"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "edge-list file to load (not needed for self-contained v3 snapshots)")
	flag.StringVar(&cfg.dataset, "dataset", "", "benchmark dataset stand-in to generate (DB, LJ, IT, TW, UK)")
	flag.StringVar(&cfg.loadIndex, "loadindex", "", "saved index file to load (skips preprocessing)")
	flag.BoolVar(&cfg.mmap, "mmap", false, "open -loadindex as a zero-copy mmap snapshot (near-instant start, shared page cache)")
	flag.BoolVar(&cfg.mmapVerify, "mmapverify", false, "with -mmap, verify the snapshot checksum at startup (reads the whole file once)")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll -loadindex for changes at this interval and hot-swap on change (0 disables)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.1, "additive error target when building an index")
	flag.Float64Var(&cfg.decay, "decay", prsim.DefaultDecay, "SimRank decay factor c")
	flag.Float64Var(&cfg.scale, "samplescale", 1.0, "Monte Carlo sample scale (1.0 = paper constants)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.maxLevels, "maxlevels", 0, "cap on walk levels (0 = default 64)")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent query workers (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.parallel, "parallel", 0, "default intra-query parallelism hint: walk chunks per query may run on up to this many workers (0 = auto: borrow idle workers; 1 = serial)")
	flag.IntVar(&cfg.cacheSize, "cache", 1024, "LRU result cache size (0 disables)")
	flag.IntVar(&cfg.maxQueue, "maxqueue", 0, "admission queue bound before requests are shed with 429 (0 = max(32, 4*workers), negative = unbounded)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request deadline ceiling (timeout_ms may only shorten it)")
	flag.DurationVar(&cfg.verifyEvery, "verifyevery", 0, "re-verify the snapshot checksum in the background at this interval (0 disables)")
	flag.Parse()

	srv, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
	idx := srv.eng.Current()
	log.Printf("prsimserve: graph %d nodes / %d edges (%s-backed), %d hubs (%s-backed, ready in %s), %d workers, listening on %s",
		idx.Graph().NumNodes(), idx.Graph().NumEdges(), idx.GraphBacking(), idx.NumHubs(),
		idx.Backing(), srv.loadTime.Round(time.Millisecond), srv.eng.Workers(), cfg.addr)
	if cfg.watch > 0 {
		go srv.watch(cfg.watch)
		log.Printf("prsimserve: watching %s every %s for hot reload", cfg.loadIndex, cfg.watch)
	}
	if cfg.verifyEvery > 0 {
		go srv.verifyLoop(cfg.verifyEvery)
		log.Printf("prsimserve: verifying snapshot checksum every %s in the background", cfg.verifyEvery)
	}
	hs := &http.Server{
		Addr:    cfg.addr,
		Handler: srv.handler(),
		// Guard the listener against stalled clients: bound header reads and
		// idle keep-alives, and cap response writes a little past the
		// per-request query deadline.
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      srv.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "prsimserve: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	graphPath, dataset string
	loadIndex          string
	mmap, mmapVerify   bool
	watch              time.Duration
	verifyEvery        time.Duration
	epsilon, decay     float64
	scale              float64
	seed               uint64
	maxLevels          int
	workers, cacheSize int
	parallel           int
	maxQueue           int
	addr               string
	timeout            time.Duration
}

// server holds the engine serving the (swappable) index; its handler is
// separable from the listener so tests can drive it through httptest.
type server struct {
	cfg      config
	g        *prsim.Graph // startup graph; nil when serving a self-contained snapshot
	eng      *prsim.Engine
	start    time.Time
	timeout  time.Duration
	loadTime time.Duration // time to load/build the index at startup

	// reloadMu serializes reloads (manual and watcher-triggered); queries
	// never take it. The fields below it record the last successful load.
	reloadMu     sync.Mutex
	lastLoadTime time.Duration
	lastLoadAt   time.Time
	watchedMod   time.Time
	watchedSize  int64

	// verifyMu guards the background checksum-verification status below it.
	verifyMu      sync.Mutex
	verifies      int64
	rolledBack    int64
	lastVerifyAt  time.Time
	lastVerifyDur time.Duration
	lastVerifyErr error
	lastVerifyGen uint64

	// stop ends the watch and verify loops (used by tests; main lets them
	// run forever).
	stop chan struct{}
}

// buildServer loads the graph (unless the snapshot is self-contained), loads
// or builds the index, and wires up the engine.
func buildServer(cfg config) (*server, error) {
	var g *prsim.Graph
	var err error
	switch {
	case cfg.graphPath != "":
		g, err = prsim.LoadGraphFile(cfg.graphPath)
	case cfg.dataset != "":
		g, err = prsim.LoadDataset(cfg.dataset)
	case cfg.loadIndex != "":
		// Self-contained snapshot: the graph comes out of the file itself.
	default:
		return nil, fmt.Errorf("specify -graph, -dataset, or a self-contained v3 -loadindex")
	}
	if err != nil {
		return nil, err
	}
	if cfg.watch > 0 && cfg.loadIndex == "" {
		return nil, fmt.Errorf("-watch requires -loadindex (a snapshot file to watch)")
	}

	// Capture the snapshot file's identity before opening it, mirroring
	// reload(): a file republished mid-open must trip the watcher later.
	startMod, startSize := statWatched(cfg.loadIndex)
	loadStart := time.Now()
	idx, err := openIndex(cfg, g)
	if err != nil {
		return nil, err
	}
	loadTime := time.Since(loadStart)
	eng, err := prsim.NewEngine(idx, prsim.EngineOptions{Workers: cfg.workers, CacheSize: cfg.cacheSize, MaxQueue: cfg.maxQueue})
	if err != nil {
		return nil, err
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s := &server{
		cfg: cfg, g: g, eng: eng,
		start: time.Now(), timeout: timeout,
		loadTime: loadTime, lastLoadTime: loadTime, lastLoadAt: time.Now(),
		stop: make(chan struct{}),
	}
	s.watchedMod, s.watchedSize = startMod, startSize
	return s, nil
}

// openIndex loads, maps, or builds the index per the configuration. g may be
// nil only when loading a self-contained snapshot.
func openIndex(cfg config, g *prsim.Graph) (*prsim.Index, error) {
	switch {
	case cfg.loadIndex != "" && (cfg.mmap || g == nil):
		// Zero-copy snapshot open; with g == nil the graph is reconstructed
		// from the file (v3). Falls back to streaming on unsupported
		// platforms.
		idx, err := prsim.OpenSnapshot(cfg.loadIndex, g)
		if err == nil && cfg.mmapVerify {
			if verr := idx.Verify(); verr != nil {
				idx.Close()
				return nil, verr
			}
		}
		return idx, err
	case cfg.loadIndex != "":
		return prsim.LoadIndexFile(cfg.loadIndex, g)
	case cfg.mmap:
		return nil, fmt.Errorf("-mmap requires -loadindex (a saved snapshot file to map)")
	default:
		return prsim.BuildIndex(g, prsim.Options{
			Decay: cfg.decay, Epsilon: cfg.epsilon, Seed: cfg.seed,
			SampleScale: cfg.scale, MaxLevels: cfg.maxLevels,
		})
	}
}

// reloadInfo summarizes one successful reload for the admin response; it is
// captured under reloadMu so handlers never read the mutable fields raw.
type reloadInfo struct {
	generation   uint64
	loadTime     time.Duration
	backing      string
	graphBacking string
}

// reload re-opens the snapshot file and hot-swaps it into the engine: new
// queries see the new index immediately, in-flight queries finish on the old
// one, the old mapping is released once they drain, and the result cache is
// invalidated (generation-keyed). Reloads are serialized; queries are never
// blocked by one.
func (s *server) reload() (reloadInfo, error) {
	if s.cfg.loadIndex == "" {
		return reloadInfo{}, fmt.Errorf("no -loadindex snapshot to reload (index was built at startup)")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// Capture the file's identity BEFORE opening it: a snapshot renamed over
	// the path while this open is in progress must still look changed on the
	// next watch tick, or the watcher would serve the stale one forever.
	preMod, preSize := statWatched(s.cfg.loadIndex)
	loadStart := time.Now()
	idx, err := openIndex(s.cfg, s.g)
	if err != nil {
		return reloadInfo{}, fmt.Errorf("reload: %w", err)
	}
	old, err := s.eng.Swap(idx)
	if err != nil {
		idx.Close()
		return reloadInfo{}, fmt.Errorf("reload: %w", err)
	}
	s.lastLoadTime = time.Since(loadStart)
	s.lastLoadAt = time.Now()
	s.watchedMod, s.watchedSize = preMod, preSize
	// The old snapshot's unmap waits for drained queries via its refcount.
	if err := old.Close(); err != nil {
		log.Printf("prsimserve: closing swapped-out snapshot: %v", err)
	}
	info := reloadInfo{
		generation:   s.eng.Generation(),
		loadTime:     s.lastLoadTime,
		backing:      idx.Backing(),
		graphBacking: idx.GraphBacking(),
	}
	log.Printf("prsimserve: reloaded %s in %s (generation %d, index %s-backed, graph %s-backed)",
		s.cfg.loadIndex, info.loadTime.Round(time.Millisecond), info.generation,
		info.backing, info.graphBacking)
	return info, nil
}

// verifySnapshot re-verifies the currently served snapshot's CRC-32C trailer
// (a full sequential read of the mapped payload) and records the outcome for
// /stats. On corruption the server attempts an automatic rollback: the
// snapshot path is re-opened and the fresh mapping is verified before being
// swapped in, so a republished good file heals the server without operator
// action, while a still-corrupt file leaves the last-good generation serving.
// A reload racing the verification can surface ErrSnapshotClosed for the
// swapped-out snapshot; that is recorded like any other outcome and the next
// tick verifies the new generation.
func (s *server) verifySnapshot() {
	idx := s.eng.Current()
	gen := s.eng.Generation()
	start := time.Now()
	err := idx.Verify()
	dur := time.Since(start)
	s.verifyMu.Lock()
	s.verifies++
	s.lastVerifyAt = time.Now()
	s.lastVerifyDur = dur
	s.lastVerifyErr = err
	s.lastVerifyGen = gen
	s.verifyMu.Unlock()
	if err == nil {
		log.Printf("prsimserve: background snapshot verify ok (generation %d, %s)", gen, dur.Round(time.Millisecond))
		return
	}
	log.Printf("prsimserve: background snapshot verify FAILED (generation %d): %v", gen, err)
	if s.cfg.loadIndex == "" {
		return // built at startup; nothing on disk to roll back to
	}
	if rerr := s.rollback(); rerr != nil {
		log.Printf("prsimserve: rollback failed (still serving generation %d): %v", gen, rerr)
		return
	}
	s.verifyMu.Lock()
	s.rolledBack++
	s.verifyMu.Unlock()
	log.Printf("prsimserve: rolled back to freshly verified snapshot of %s (generation %d)",
		s.cfg.loadIndex, s.eng.Generation())
}

// rollback is the recovery half of verifySnapshot: re-open the snapshot path
// and swap the fresh mapping in, but only after its checksum verifies clean —
// a corrupt on-disk file must never replace the serving generation, whose
// resident pages may still be good. Shares reload's bookkeeping (and its
// lock) so the watcher does not double-load a file the rollback just picked
// up.
func (s *server) rollback() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	preMod, preSize := statWatched(s.cfg.loadIndex)
	loadStart := time.Now()
	idx, err := openIndex(s.cfg, s.g)
	if err != nil {
		return fmt.Errorf("re-open: %w", err)
	}
	if err := idx.Verify(); err != nil {
		idx.Close()
		return fmt.Errorf("re-opened snapshot still corrupt: %w", err)
	}
	old, err := s.eng.Swap(idx)
	if err != nil {
		idx.Close()
		return err
	}
	s.lastLoadTime = time.Since(loadStart)
	s.lastLoadAt = time.Now()
	s.watchedMod, s.watchedSize = preMod, preSize
	if err := old.Close(); err != nil {
		log.Printf("prsimserve: closing rolled-back snapshot: %v", err)
	}
	return nil
}

// verifyLoop runs verifySnapshot on a timer until the server stops.
func (s *server) verifyLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		s.verifySnapshot()
	}
}

// statWatched returns the snapshot file's identity (zero values when the
// path is empty or unreadable).
func statWatched(path string) (time.Time, int64) {
	if path == "" {
		return time.Time{}, 0
	}
	st, err := os.Stat(path)
	if err != nil {
		return time.Time{}, 0
	}
	return st.ModTime(), st.Size()
}

// changedSinceLastLoad reports whether the watched snapshot file's mtime or
// size moved since the last (re)load.
func (s *server) changedSinceLastLoad() bool {
	st, err := os.Stat(s.cfg.loadIndex)
	if err != nil {
		return false // transiently missing mid-rewrite; try again next tick
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return !st.ModTime().Equal(s.watchedMod) || st.Size() != s.watchedSize
}

// watch polls the snapshot file and reloads on change. Reload failures are
// logged and retried on the next change; the server keeps serving the old
// index (a half-written file simply fails validation and is skipped —
// publishers should still write-then-rename so a mapped file is never
// truncated in place).
func (s *server) watch(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if !s.changedSinceLastLoad() {
			continue
		}
		if _, err := s.reload(); err != nil {
			log.Printf("prsimserve: watch reload failed (still serving previous index): %v", err)
			// Remember the bad file's identity so a broken snapshot is not
			// retried every tick; the next write triggers a fresh attempt.
			s.reloadMu.Lock()
			s.watchedMod, s.watchedSize = statWatched(s.cfg.loadIndex)
			s.reloadMu.Unlock()
		}
	}
}

// handler builds the route table. Per-request deadlines come from requestCtx
// (every query path is context-cancellable), so timed-out requests get the
// same JSON error contract as every other failure.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("POST /topk", s.handleTopK)
	mux.HandleFunc("GET /pair", s.handlePair)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// apiRequest is the decoded request-plane parameter bundle shared by /query
// and /topk: one parse point regardless of transport (GET URL parameters or
// POST JSON body), feeding one prsim.Request.
type apiRequest struct {
	sources  []int
	epsilon  float64
	k        int
	kSet     bool
	limit    int
	timeout  time.Duration
	noCache  bool
	parallel int
}

// requestBodyJSON is the POST body shape of /query and /topk.
type requestBodyJSON struct {
	U           *int    `json:"u"`
	Sources     []int   `json:"sources"`
	Epsilon     float64 `json:"epsilon"`
	K           *int    `json:"k"`
	Limit       int     `json:"limit"`
	TimeoutMS   int64   `json:"timeout_ms"`
	NoCache     bool    `json:"no_cache"`
	Parallelism int     `json:"parallelism"`
}

// parseAPIRequest decodes the request-plane knobs from either transport.
func parseAPIRequest(r *http.Request) (apiRequest, error) {
	var req apiRequest
	if r.Method == http.MethodPost {
		var body requestBodyJSON
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			return req, fmt.Errorf("invalid JSON body: %v", err)
		}
		if body.U != nil {
			req.sources = append(req.sources, *body.U)
		}
		req.sources = append(req.sources, body.Sources...)
		req.epsilon = body.Epsilon
		if body.K != nil {
			req.k, req.kSet = *body.K, true
		}
		req.limit = body.Limit
		req.timeout = time.Duration(body.TimeoutMS) * time.Millisecond
		req.noCache = body.NoCache
		req.parallel = body.Parallelism
		return req, nil
	}
	q := r.URL.Query()
	sources, err := intParams(q["u"])
	if err != nil {
		return req, fmt.Errorf("u must be an integer")
	}
	req.sources = sources
	if v := q.Get("epsilon"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("epsilon must be a number")
		}
		req.epsilon = eps
	}
	if v := q.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("k must be an integer")
		}
		req.k, req.kSet = k, true
	}
	if req.limit, err = intParam(q.Get("limit"), 0); err != nil {
		return req, fmt.Errorf("limit must be an integer")
	}
	ms, err := intParam(q.Get("timeout_ms"), 0)
	if err != nil {
		return req, fmt.Errorf("timeout_ms must be an integer")
	}
	req.timeout = time.Duration(ms) * time.Millisecond
	if v := q.Get("nocache"); v != "" && v != "0" && v != "false" {
		req.noCache = true
	}
	if req.parallel, err = intParam(q.Get("parallel"), 0); err != nil {
		return req, fmt.Errorf("parallel must be an integer")
	}
	return req, nil
}

// effectiveParallel resolves the intra-query parallelism hint: the
// per-request value wins, then the -parallel server default; zero is left for
// the engine to resolve as auto (borrow idle workers). The hint never changes
// scores — chunk decomposition and merge order are parallelism-independent —
// so it is safe to vary per request against a shared cache.
func (s *server) effectiveParallel(req apiRequest) int {
	if req.parallel > 0 {
		return req.parallel
	}
	return s.cfg.parallel
}

// scoredNodeJSON is one (node, score) pair in a response.
type scoredNodeJSON struct {
	Node  int     `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// queryResultJSON is the answer to one single-source query. Batch entries
// deliberately carry no cache/coalescing flags: duplicate sources in one
// batch must render byte-identically (the flags live on the single-source
// and /topk envelopes instead).
type queryResultJSON struct {
	Source  int              `json:"source"`
	Support int              `json:"support"` // number of non-zero scores
	Scores  []scoredNodeJSON `json:"scores"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	api, err := parseAPIRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(api.sources) == 0 {
		writeError(w, http.StatusBadRequest, "at least one source is required (u parameter or JSON u/sources)")
		return
	}
	if api.limit < 0 {
		writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	ctx, cancel := s.requestCtx(r, api.timeout)
	defer cancel()
	resps, err := s.eng.DoBatch(ctx, prsim.Request{Epsilon: api.epsilon, NoCache: api.noCache, Parallelism: s.effectiveParallel(api)}, api.sources)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([]queryResultJSON, len(resps))
	for i, resp := range resps {
		out[i] = renderResult(resp.Result, api.limit)
	}
	var epsilon float64
	var clamped bool
	if len(resps) > 0 {
		epsilon, clamped = resps[0].Epsilon, resps[0].Clamped
	}
	if len(api.sources) == 1 {
		one := struct {
			queryResultJSON
			Epsilon   float64 `json:"epsilon"`
			Clamped   bool    `json:"epsilon_clamped,omitempty"`
			Cached    bool    `json:"cached,omitempty"`
			Coalesced bool    `json:"coalesced,omitempty"`
		}{out[0], epsilon, clamped, resps[0].CacheHit, resps[0].Coalesced}
		writeJSON(w, one)
		return
	}
	writeJSON(w, map[string]any{"results": out, "epsilon": epsilon, "epsilon_clamped": clamped})
}

// renderResult flattens a result into descending-score order, source first
// (its self-similarity is 1, the maximum), keeping at most limit nodes when
// limit > 0. Results may be shared with concurrent requests through the
// engine's cache, so this reads the result without mutating it.
func renderResult(res *prsim.Result, limit int) queryResultJSON {
	scores := res.Scores()
	nodes := make([]scoredNodeJSON, 0, len(scores))
	for v, sc := range scores {
		nodes = append(nodes, scoredNodeJSON{Node: v, Score: sc})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Score != nodes[j].Score {
			return nodes[i].Score > nodes[j].Score
		}
		return nodes[i].Node < nodes[j].Node
	})
	if limit > 0 && len(nodes) > limit {
		nodes = nodes[:limit]
	}
	return queryResultJSON{Source: res.Source(), Support: len(scores), Scores: nodes}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	api, err := parseAPIRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(api.sources) != 1 || api.sources[0] < 0 {
		writeError(w, http.StatusBadRequest, "exactly one non-negative source is required (u parameter or JSON u)")
		return
	}
	u := api.sources[0]
	k := 20
	if api.kSet {
		k = api.k
	}
	if k <= 0 {
		writeError(w, http.StatusBadRequest, "k must be a positive integer")
		return
	}
	ctx, cancel := s.requestCtx(r, api.timeout)
	defer cancel()
	resp, err := s.eng.Do(ctx, prsim.Request{Source: u, Epsilon: api.epsilon, K: k, NoCache: api.noCache, Parallelism: s.effectiveParallel(api)})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	nodes := make([]scoredNodeJSON, len(resp.Top))
	for i, t := range resp.Top {
		nodes[i] = scoredNodeJSON{Node: t.Node, Label: t.Label, Score: t.Score}
	}
	writeJSON(w, map[string]any{
		"source": u, "k": k, "top": nodes,
		"epsilon": resp.Epsilon, "epsilon_clamped": resp.Clamped,
		"cached": resp.CacheHit, "coalesced": resp.Coalesced,
	})
}

func (s *server) handlePair(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := intParam(q.Get("u"), -1)
	v, errV := intParam(q.Get("v"), -1)
	if errU != nil || errV != nil || u < 0 || v < 0 {
		writeError(w, http.StatusBadRequest, "integer u and v parameters are required")
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	score, err := s.eng.Pair(ctx, u, v)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, map[string]any{"u": u, "v": v, "score": score})
}

func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.loadIndex == "" {
		writeError(w, http.StatusConflict, "no -loadindex snapshot to reload (index was built at startup)")
		return
	}
	info, err := s.reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{
		"status":        "reloaded",
		"generation":    info.generation,
		"backing":       info.backing,
		"graph_backing": info.graphBacking,
		"load_seconds":  info.loadTime.Seconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	idx := s.eng.Current()
	g := idx.Graph()
	ist := idx.Stats()
	est := s.eng.Stats()
	s.reloadMu.Lock()
	lastLoad := s.lastLoadTime
	lastLoadAt := s.lastLoadAt
	s.reloadMu.Unlock()
	s.verifyMu.Lock()
	verify := map[string]any{
		"every_seconds": s.cfg.verifyEvery.Seconds(),
		"runs":          s.verifies,
		"rolled_back":   s.rolledBack,
	}
	if s.verifies > 0 {
		verify["last_at"] = s.lastVerifyAt.UTC().Format(time.RFC3339)
		verify["last_seconds"] = s.lastVerifyDur.Seconds()
		verify["last_generation"] = s.lastVerifyGen
		verify["last_ok"] = s.lastVerifyErr == nil
		if s.lastVerifyErr != nil {
			verify["last_error"] = s.lastVerifyErr.Error()
		}
	}
	s.verifyMu.Unlock()
	writeJSON(w, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"graph": map[string]any{
			"nodes":   g.NumNodes(),
			"edges":   g.NumEdges(),
			"backing": idx.GraphBacking(),
		},
		"index": map[string]any{
			"hubs":          ist.NumHubs,
			"entries":       ist.Entries,
			"size_bytes":    idx.SizeBytes(),
			"second_moment": ist.SecondMoment,
			"backing":       idx.Backing(),
			"madvise":       idx.Advices(),
			"load_seconds":  lastLoad.Seconds(),
		},
		"snapshot": map[string]any{
			"path":           s.cfg.loadIndex,
			"generation":     est.Generation,
			"swaps":          est.Swaps,
			"last_load_at":   lastLoadAt.UTC().Format(time.RFC3339),
			"watch_seconds":  s.cfg.watch.Seconds(),
			"self_contained": s.g == nil,
		},
		"verify": verify,
		"engine": map[string]any{
			"workers":       est.Workers,
			"max_queue":     est.MaxQueue,
			"queue_depth":   est.QueueDepth,
			"queries":       est.Queries,
			"cache_hits":    est.CacheHits,
			"cache_entries": est.CacheEntries,
			"cache_reuses":  est.CacheReuses,
			"coalesced":     est.Coalesced,
			"shed":          est.Shed,
			"pair_queries":  est.PairQueries,
			"errors":        est.Errors,

			"parallel_default": s.cfg.parallel,
			"parallel_queries": est.ParallelQueries,
			"chunks_executed":  est.ChunksExecuted,
			"chunks_merged":    est.ChunksMerged,
		},
	})
}

// requestCtx derives the request's deadline: the server's -timeout ceiling,
// shortened by a positive per-request timeout (timeout_ms). Requests cannot
// extend past the ceiling — the listener's WriteTimeout is sized to it.
func (s *server) requestCtx(r *http.Request, reqTimeout time.Duration) (ctx context.Context, cancel func()) {
	timeout := s.timeout
	if reqTimeout > 0 && reqTimeout < timeout {
		timeout = reqTimeout
	}
	return context.WithTimeout(r.Context(), timeout)
}

// writeQueryError maps engine errors to HTTP statuses: bad node ids (and bad
// per-request epsilons) are the client's fault, shed requests are 429 with a
// Retry-After hint, timeouts are 504, everything else is a server-side
// failure.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, prsim.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, prsim.ErrInvalidNode) || errors.Is(err, prsim.ErrInvalidEpsilon):
		status = http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, err.Error())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		log.Printf("prsimserve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func intParams(ss []string) ([]int, error) {
	out := make([]int, 0, len(ss))
	for _, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
