package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: prsim
cpu: AMD EPYC 7B13
BenchmarkQueryThroughput-8   	     100	  10563000 ns/op	  760000 B/op	      82 allocs/op
BenchmarkQueryInto-8         	     150	   9800000 ns/op
PASS
ok  	prsim	3.210s
pkg: prsim/internal/core
BenchmarkLoadIndex-8         	       5	 240000000 ns/op	36.50 MB/s
PASS
ok  	prsim/internal/core	2.110s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "BenchmarkQueryThroughput-8" || b.Pkg != "prsim" {
		t.Errorf("first benchmark = %q pkg %q", b.Name, b.Pkg)
	}
	if b.Runs != 100 || b.NsPerOp != 10563000 {
		t.Errorf("first benchmark runs/ns = %d/%v", b.Runs, b.NsPerOp)
	}
	if b.Metrics["B/op"] != 760000 || b.Metrics["allocs/op"] != 82 {
		t.Errorf("first benchmark metrics = %v", b.Metrics)
	}
	if report.Benchmarks[1].Metrics != nil {
		t.Errorf("ns/op-only line should have no extra metrics: %v", report.Benchmarks[1].Metrics)
	}
	last := report.Benchmarks[2]
	if last.Pkg != "prsim/internal/core" {
		t.Errorf("pkg tracking across blocks: got %q", last.Pkg)
	}
	if last.Metrics["MB/s"] != 36.50 {
		t.Errorf("custom metric MB/s = %v", last.Metrics["MB/s"])
	}
	if report.GoVersion == "" || report.GOOS == "" || report.GOARCH == "" {
		t.Errorf("environment fields missing: %+v", report)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `Benchmark
BenchmarkBroken-8 notanumber 5 ns/op
BenchmarkOdd-8 10 5
--- FAIL: TestSomething
FAIL
`
	report, err := parse(strings.NewReader(noise), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("noise lines produced %d benchmarks: %+v", len(report.Benchmarks), report.Benchmarks)
	}
}

func reportOf(rs ...Result) *Report { return &Report{Benchmarks: rs} }

func TestCompareReports(t *testing.T) {
	base := reportOf(
		Result{Pkg: "prsim", Name: "BenchmarkSingleSourceQuery-8", NsPerOp: 1000},
		Result{Pkg: "prsim", Name: "BenchmarkOpenSnapshotMmap-8", NsPerOp: 500},
		Result{Pkg: "prsim", Name: "BenchmarkIndexBuild-8", NsPerOp: 100},
		Result{Pkg: "prsim", Name: "BenchmarkRemoved-8", NsPerOp: 10},
	)
	head := reportOf(
		Result{Pkg: "prsim", Name: "BenchmarkSingleSourceQuery-8", NsPerOp: 1100}, // +10%, under gate
		Result{Pkg: "prsim", Name: "BenchmarkOpenSnapshotMmap-8", NsPerOp: 900},   // +80%, over gate
		Result{Pkg: "prsim", Name: "BenchmarkIndexBuild-8", NsPerOp: 1000},        // +900% but not matched
		Result{Pkg: "prsim", Name: "BenchmarkNew-8", NsPerOp: 42},                 // new, never gated
	)
	gate := regexp.MustCompile(`Query|Snapshot`)
	rows := compareReports(base, head, 20, gate)
	byName := map[string]comparison{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if c := byName["prsim BenchmarkSingleSourceQuery-8"]; c.Regressed || !c.Gated {
		t.Errorf("query +10%% should pass the 20%% gate: %+v", c)
	}
	if c := byName["prsim BenchmarkOpenSnapshotMmap-8"]; !c.Regressed {
		t.Errorf("snapshot open +80%% should fail the gate: %+v", c)
	}
	if c := byName["prsim BenchmarkIndexBuild-8"]; c.Regressed || c.Gated {
		t.Errorf("unmatched benchmark must not be gated: %+v", c)
	}
	if c := byName["prsim BenchmarkNew-8"]; c.onlyIn != "head" {
		t.Errorf("new benchmark should report only-in-head: %+v", c)
	}
	if c := byName["prsim BenchmarkRemoved-8"]; c.onlyIn != "base" {
		t.Errorf("removed benchmark should report only-in-base: %+v", c)
	}
	if !rows[0].Regressed {
		t.Errorf("regressions must sort first, got %+v", rows[0])
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r *Report) string {
		p := filepath.Join(dir, name)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", reportOf(Result{Pkg: "prsim", Name: "BenchmarkSingleSourceQuery-8", NsPerOp: 1000}))
	good := write("good.json", reportOf(Result{Pkg: "prsim", Name: "BenchmarkSingleSourceQuery-8", NsPerOp: 1100}))
	bad := write("bad.json", reportOf(Result{Pkg: "prsim", Name: "BenchmarkSingleSourceQuery-8", NsPerOp: 2000}))

	var out strings.Builder
	code, err := runCompare(&out, base, good, 20, "Query")
	if err != nil || code != 0 {
		t.Fatalf("good compare = code %d err %v\n%s", code, err, out.String())
	}
	out.Reset()
	code, err = runCompare(&out, base, bad, 20, "Query")
	if err != nil || code != 1 {
		t.Fatalf("bad compare = code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("verdict table missing REGRESSION marker:\n%s", out.String())
	}
	if _, err := runCompare(&out, filepath.Join(dir, "missing.json"), good, 20, ""); err == nil {
		t.Error("missing base file should error")
	}
}
