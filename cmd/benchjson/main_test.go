package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: prsim
cpu: AMD EPYC 7B13
BenchmarkQueryThroughput-8   	     100	  10563000 ns/op	  760000 B/op	      82 allocs/op
BenchmarkQueryInto-8         	     150	   9800000 ns/op
PASS
ok  	prsim	3.210s
pkg: prsim/internal/core
BenchmarkLoadIndex-8         	       5	 240000000 ns/op	36.50 MB/s
PASS
ok  	prsim/internal/core	2.110s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}
	b := report.Benchmarks[0]
	if b.Name != "BenchmarkQueryThroughput-8" || b.Pkg != "prsim" {
		t.Errorf("first benchmark = %q pkg %q", b.Name, b.Pkg)
	}
	if b.Runs != 100 || b.NsPerOp != 10563000 {
		t.Errorf("first benchmark runs/ns = %d/%v", b.Runs, b.NsPerOp)
	}
	if b.Metrics["B/op"] != 760000 || b.Metrics["allocs/op"] != 82 {
		t.Errorf("first benchmark metrics = %v", b.Metrics)
	}
	if report.Benchmarks[1].Metrics != nil {
		t.Errorf("ns/op-only line should have no extra metrics: %v", report.Benchmarks[1].Metrics)
	}
	last := report.Benchmarks[2]
	if last.Pkg != "prsim/internal/core" {
		t.Errorf("pkg tracking across blocks: got %q", last.Pkg)
	}
	if last.Metrics["MB/s"] != 36.50 {
		t.Errorf("custom metric MB/s = %v", last.Metrics["MB/s"])
	}
	if report.GoVersion == "" || report.GOOS == "" || report.GOARCH == "" {
		t.Errorf("environment fields missing: %+v", report)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `Benchmark
BenchmarkBroken-8 notanumber 5 ns/op
BenchmarkOdd-8 10 5
--- FAIL: TestSomething
FAIL
`
	report, err := parse(strings.NewReader(noise), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("noise lines produced %d benchmarks: %+v", len(report.Benchmarks), report.Benchmarks)
	}
}
