// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report, so CI can archive one benchmark artifact per commit and the
// performance trajectory of the repo stays diffable.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -o BENCH_ci.json
//	go test -bench . ./... | benchjson          # JSON to stdout
//
// It parses the standard benchmark result lines, e.g.
//
//	pkg: prsim
//	BenchmarkQueryThroughput-8   	 100	  10563000 ns/op	  760000 B/op	      82 allocs/op
//
// keeping every extra metric column (B/op, allocs/op, and any custom
// ReportMetric units) in a per-benchmark metrics map. Non-benchmark lines are
// passed through to stderr with -echo, so the tool can sit in a pipeline
// without hiding test failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" line, if any.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count (the first column).
	Runs int64 `json:"runs"`
	// NsPerOp is the ns/op metric, the one column every line has.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other "value unit" pair (B/op, allocs/op, custom
	// units), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Generated  time.Time `json:"generated"`
	Benchmarks []Result  `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	echo := flag.Bool("echo", false, "echo all input lines to stderr so the pipeline stays observable")
	flag.Parse()

	report, err := parse(os.Stdin, *echo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go test -bench output and collects benchmark result lines.
func parse(r io.Reader, echo bool) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Generated: time.Now().UTC(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Fprintln(os.Stderr, line)
		}
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if res, ok := parseBenchLine(line, pkg); ok {
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBenchLine parses one "BenchmarkName-8  N  V unit  V unit ..." line.
// Lines that do not match the shape are ignored (ok=false).
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, "ns/op".
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Pkg: pkg, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = val
	}
	return res, true
}
