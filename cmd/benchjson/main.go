// Command benchjson converts `go test -bench` output into a machine-readable
// JSON report, so CI can archive one benchmark artifact per commit and the
// performance trajectory of the repo stays diffable — and compares two such
// reports so CI can fail on regressions.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -o BENCH_ci.json
//	go test -bench . ./... | benchjson          # JSON to stdout
//	benchjson -compare -max-regress 20 -match 'Query|Snapshot' base.json head.json
//
// It parses the standard benchmark result lines, e.g.
//
//	pkg: prsim
//	BenchmarkQueryThroughput-8   	 100	  10563000 ns/op	  760000 B/op	      82 allocs/op
//
// keeping every extra metric column (B/op, allocs/op, and any custom
// ReportMetric units) in a per-benchmark metrics map. Non-benchmark lines are
// passed through to stderr with -echo, so the tool can sit in a pipeline
// without hiding test failures.
//
// In -compare mode it reads two previously written reports (base first, head
// second), matches benchmarks by package + name, and exits non-zero when any
// benchmark whose name matches -match regressed in ns/op by more than
// -max-regress percent. Benchmarks present in only one report are listed but
// never fail the gate (new benchmarks must not break the build that adds
// them).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the import path from the preceding "pkg:" line, if any.
	Pkg string `json:"pkg,omitempty"`
	// Runs is the iteration count (the first column).
	Runs int64 `json:"runs"`
	// NsPerOp is the ns/op metric, the one column every line has.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other "value unit" pair (B/op, allocs/op, custom
	// units), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU records the machine's logical CPU count — parallel-query and
	// batch-fusion numbers are only comparable between runs on similar core
	// counts, so trend readers need it alongside the timings.
	NumCPU     int       `json:"num_cpu"`
	Generated  time.Time `json:"generated"`
	Benchmarks []Result  `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file (default stdout)")
	echo := flag.Bool("echo", false, "echo all input lines to stderr so the pipeline stays observable")
	compare := flag.Bool("compare", false, "compare two report files (base head) instead of parsing bench output")
	maxRegress := flag.Float64("max-regress", 20, "with -compare, fail when a matched benchmark's ns/op grows by more than this percent")
	match := flag.String("match", "", "with -compare, regexp selecting which benchmarks can fail the gate (default: all)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: base head")
			os.Exit(2)
		}
		code, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress, *match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		os.Exit(code)
	}

	report, err := parse(os.Stdin, *echo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// comparison is the verdict for one benchmark present in both reports.
type comparison struct {
	Name      string
	BaseNs    float64
	HeadNs    float64
	DeltaPct  float64 // positive = slower
	Gated     bool    // name matched the -match filter
	Regressed bool    // gated and above the threshold
	onlyIn    string  // "base" or "head" when only that report has it
}

// runCompare loads two reports and prints a verdict table. Return code 0
// means no gated regression, 1 means at least one.
func runCompare(w io.Writer, basePath, headPath string, maxRegressPct float64, match string) (int, error) {
	base, err := readReport(basePath)
	if err != nil {
		return 0, fmt.Errorf("base report: %w", err)
	}
	head, err := readReport(headPath)
	if err != nil {
		return 0, fmt.Errorf("head report: %w", err)
	}
	var gate *regexp.Regexp
	if match != "" {
		gate, err = regexp.Compile(match)
		if err != nil {
			return 0, fmt.Errorf("bad -match regexp: %w", err)
		}
	}
	rows := compareReports(base, head, maxRegressPct, gate)

	failed := 0
	fmt.Fprintf(w, "%-60s %14s %14s %9s  %s\n", "benchmark", "base ns/op", "head ns/op", "delta", "verdict")
	for _, r := range rows {
		switch {
		case r.onlyIn != "":
			fmt.Fprintf(w, "%-60s %14s %14s %9s  only in %s\n", r.Name,
				dashIf(r.onlyIn == "head", r.BaseNs), dashIf(r.onlyIn == "base", r.HeadNs),
				"-", r.onlyIn)
		default:
			verdict := "ok"
			if r.Regressed {
				verdict = fmt.Sprintf("REGRESSION (> %.0f%%)", maxRegressPct)
				failed++
			} else if !r.Gated {
				verdict = "ok (not gated)"
			}
			fmt.Fprintf(w, "%-60s %14.0f %14.0f %+8.1f%%  %s\n", r.Name, r.BaseNs, r.HeadNs, r.DeltaPct, verdict)
		}
	}
	if failed > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond %.0f%%\n", failed, maxRegressPct)
		return 1, nil
	}
	fmt.Fprintf(w, "\nno gated regression beyond %.0f%%\n", maxRegressPct)
	return 0, nil
}

func dashIf(missing bool, v float64) string {
	if missing {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// compareReports joins two reports on pkg+name and computes the ns/op delta
// for the intersection, sorted worst-regression first.
func compareReports(base, head *Report, maxRegressPct float64, gate *regexp.Regexp) []comparison {
	key := func(r Result) string { return r.Pkg + " " + r.Name }
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[key(r)] = r
	}
	var rows []comparison
	seen := make(map[string]bool, len(head.Benchmarks))
	for _, h := range head.Benchmarks {
		k := key(h)
		seen[k] = true
		b, ok := baseBy[k]
		if !ok {
			rows = append(rows, comparison{Name: k, HeadNs: h.NsPerOp, onlyIn: "head"})
			continue
		}
		c := comparison{Name: k, BaseNs: b.NsPerOp, HeadNs: h.NsPerOp}
		if b.NsPerOp > 0 {
			c.DeltaPct = (h.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		c.Gated = gate == nil || gate.MatchString(h.Name)
		c.Regressed = c.Gated && c.DeltaPct > maxRegressPct
		rows = append(rows, c)
	}
	for _, b := range base.Benchmarks {
		if k := key(b); !seen[k] {
			rows = append(rows, comparison{Name: k, BaseNs: b.NsPerOp, onlyIn: "base"})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Regressed != rows[j].Regressed {
			return rows[i].Regressed
		}
		if rows[i].DeltaPct != rows[j].DeltaPct {
			return rows[i].DeltaPct > rows[j].DeltaPct
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// readReport loads a JSON report written by this tool.
func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &r, nil
}

// parse scans go test -bench output and collects benchmark result lines.
func parse(r io.Reader, echo bool) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Generated: time.Now().UTC(),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Fprintln(os.Stderr, line)
		}
		if p, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if res, ok := parseBenchLine(line, pkg); ok {
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBenchLine parses one "BenchmarkName-8  N  V unit  V unit ..." line.
// Lines that do not match the shape are ignored (ok=false).
func parseBenchLine(line, pkg string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	// Shortest valid line: name, runs, value, "ns/op".
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Pkg: pkg, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = val
	}
	return res, true
}
