package main

import (
	"testing"

	"prsim/internal/eval"
)

// tinyConfig keeps the CLI plumbing tests fast; the real figure regeneration
// is exercised by the repository benchmarks.
func tinyConfig() eval.Config {
	cfg := eval.QuickConfig()
	cfg.Queries = 1
	cfg.DatasetScale = 0.02
	cfg.SampleScale = 0.02
	return cfg
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("not-an-experiment", tinyConfig(), nil); err == nil {
		t.Errorf("unknown experiment should be an error")
	}
}

func TestRunFigure1CLI(t *testing.T) {
	if err := run("fig1", tinyConfig(), nil); err != nil {
		t.Errorf("run(fig1): %v", err)
	}
}

func TestRunSecondMomentCLI(t *testing.T) {
	if err := run("secondmoment", tinyConfig(), []string{"DB", "TW"}); err != nil {
		t.Errorf("run(secondmoment): %v", err)
	}
}

func TestRunBackwardWalkCLI(t *testing.T) {
	if err := run("backwardwalk", tinyConfig(), nil); err != nil {
		t.Errorf("run(backwardwalk): %v", err)
	}
}
