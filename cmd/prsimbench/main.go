// Command prsimbench regenerates the tables and figures of the PRSim paper's
// evaluation section on the synthetic dataset stand-ins. Each experiment
// prints the series the corresponding figure plots; see EXPERIMENTS.md for the
// mapping and for paper-vs-measured notes.
//
// Usage:
//
//	prsimbench -experiment fig2 [-full] [-datasets DB,LJ] [-queries 10]
//	prsimbench -experiment querypath -full -cpuprofile cpu.prof
//	prsimbench -experiment all
//
// Experiments: fig1, fig2, fig3, fig4, fig5, fig6a, fig6b, fig7a, fig7b,
// hubsweep, backwardwalk, secondmoment, loadtime, querypath, updatecost, all.
//
// -cpuprofile / -memprofile write pprof profiles covering the selected
// experiment, so kernel changes can be attributed function by function (see
// the README's profiling guide). The querypath experiment reports ns/query,
// allocs/query and the Walks / BackwardWalkCost / IndexEntriesRead breakdown
// of the single-source hot path on the standard power-law benchmark graph
// (150k nodes with -full, 30k without).
//
// The loadtime experiment benchmarks the full serving cold start (graph +
// index): the edge-list parse + v2-era index loaders against the
// self-contained v3 snapshot, which maps both out of one file (use -full for
// the ≥100k-node configuration).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"text/tabwriter"

	"prsim/internal/dataset"
	"prsim/internal/eval"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (fig1..fig7b, hubsweep, backwardwalk, secondmoment, loadtime, querypath, updatecost, adaptive, all)")
		full       = flag.Bool("full", false, "use the full (slower) configuration instead of the quick one")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset for fig2-fig5 (default: all five)")
		queries    = flag.Int("queries", 0, "override the number of queries per measurement")
		parallel   = flag.Int("parallel", 0, "cap the querypath intra-query parallelism sweep (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "random seed")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the experiment to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the experiment to this file")
	)
	flag.Parse()

	cfg := eval.QuickConfig()
	if *full {
		cfg = eval.FullConfig()
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	cfg.MaxParallel = *parallel
	cfg.Seed = *seed

	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	} else {
		names = dataset.Names()
	}

	var stopCPUProfile func()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prsimbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prsimbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	if err := run(*experiment, cfg, names); err != nil {
		// Flush the profile even on failure — a truncated cpu.prof is useless
		// exactly when a profile of the failing run is wanted, and os.Exit
		// does not run defers.
		if stopCPUProfile != nil {
			stopCPUProfile()
		}
		fmt.Fprintf(os.Stderr, "prsimbench: %v\n", err)
		os.Exit(1)
	}
	if stopCPUProfile != nil {
		stopCPUProfile()
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prsimbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prsimbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

func run(experiment string, cfg eval.Config, datasets []string) error {
	switch strings.ToLower(experiment) {
	case "fig1":
		return runFigure1(cfg)
	case "fig2", "fig3", "fig4", "fig5", "tradeoffs":
		return runTradeoffs(cfg, datasets)
	case "fig6a":
		return runFigure6a(cfg)
	case "fig6b":
		return runFigure6b(cfg)
	case "fig7a", "fig7b", "fig7":
		return runFigure7(cfg)
	case "hubsweep":
		return runHubSweep(cfg)
	case "backwardwalk":
		return runBackwardWalk(cfg)
	case "secondmoment":
		return runSecondMoment(cfg, datasets)
	case "loadtime", "snapshot":
		return runLoadTime(cfg)
	case "querypath", "kernel":
		return runQueryPath(cfg)
	case "updatecost", "dynamic":
		return runUpdateCost(cfg)
	case "adaptive":
		return runAdaptive(cfg)
	case "all":
		for _, exp := range []string{"fig1", "tradeoffs", "fig6a", "fig6b", "fig7", "hubsweep", "backwardwalk", "secondmoment", "loadtime", "querypath", "updatecost", "adaptive"} {
			if err := run(exp, cfg, datasets); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", experiment)
	}
}

func newTable(header ...string) (*tabwriter.Writer, func()) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	return w, func() { w.Flush() }
}

func runFigure1(cfg eval.Config) error {
	fmt.Println("=== Figure 1: out-degree distributions of IT and TW ===")
	rows, gammas, err := eval.RunFigure1(cfg)
	if err != nil {
		return err
	}
	// Print a compressed view: a handful of quantile points per dataset.
	byDataset := map[string][]eval.Figure1Row{}
	for _, r := range rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	w, flush := newTable("dataset", "degree k", "P(out-degree >= k)")
	defer flush()
	for _, name := range []string{"IT", "TW"} {
		ds := byDataset[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i].Degree < ds[j].Degree })
		step := len(ds) / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(ds); i += step {
			fmt.Fprintf(w, "%s\t%d\t%.6f\n", name, ds[i].Degree, ds[i].Fraction)
		}
	}
	for name, gamma := range gammas {
		fmt.Printf("fitted cumulative out-degree exponent gamma(%s) = %.2f\n", name, gamma)
	}
	return nil
}

func runTradeoffs(cfg eval.Config, datasets []string) error {
	fmt.Println("=== Figures 2-5: accuracy vs query time / index size / preprocessing ===")
	rows, err := eval.RunTradeoffs(cfg, datasets)
	if err != nil {
		return err
	}
	w, flush := newTable("dataset", "algorithm", "params", "query time (s)", "AvgError@50", "Precision@50", "index (MB)", "preprocessing (s)")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.4f\t%.4f\t%.3f\t%.2f\t%.3f\n",
			r.Dataset, r.Algorithm, r.Param, r.QueryTimeSec, r.AvgErrorAt50, r.PrecisionAt50,
			float64(r.IndexBytes)/(1<<20), r.PrepSeconds)
	}
	return nil
}

func runFigure6a(cfg eval.Config) error {
	fmt.Println("=== Figure 6(a): query time vs power-law exponent gamma ===")
	rows, err := eval.RunFigure6a(cfg)
	if err != nil {
		return err
	}
	w, flush := newTable("gamma", "algorithm", "query time (s)")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%s\t%.5f\n", r.Gamma, r.Algorithm, r.QueryTimeSec)
	}
	return nil
}

func runFigure6b(cfg eval.Config) error {
	fmt.Println("=== Figure 6(b): PRSim query time vs graph size (gamma=3, d=10) ===")
	rows, err := eval.RunFigure6b(cfg)
	if err != nil {
		return err
	}
	w, flush := newTable("n", "query time (s)")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.5f\n", r.N, r.QueryTimeSec)
	}
	return nil
}

func runFigure7(cfg eval.Config) error {
	fmt.Println("=== Figure 7: Erdos-Renyi graphs, query time (a) and index size (b) vs average degree ===")
	rows, err := eval.RunFigure7(cfg)
	if err != nil {
		return err
	}
	w, flush := newTable("avg degree", "algorithm", "query time (s)", "index (MB)")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%.0f\t%s\t%.5f\t%.2f\n", r.AvgDegree, r.Algorithm, r.QueryTimeSec, float64(r.IndexBytes)/(1<<20))
	}
	return nil
}

func runHubSweep(cfg eval.Config) error {
	fmt.Println("=== Ablation: hub count j0 vs index size and query time ===")
	rows, err := eval.RunHubSweep(cfg)
	if err != nil {
		return err
	}
	w, flush := newTable("j0", "index entries", "index (MB)", "preprocessing (s)", "query time (s)")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.3f\t%.5f\n",
			r.NumHubs, r.IndexEntries, float64(r.IndexBytes)/(1<<20), r.PrepSeconds, r.QueryTimeSec)
	}
	return nil
}

func runBackwardWalk(cfg eval.Config) error {
	fmt.Println("=== Ablation: simple vs variance-bounded backward walk ===")
	rows, err := eval.RunBackwardWalkAblation(cfg)
	if err != nil {
		return err
	}
	w, flush := newTable("algorithm", "mean", "exact", "variance", "max estimate", "cost/run")
	defer flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.5f\t%.5f\t%.6f\t%.4f\t%.1f\n",
			r.Algorithm, r.Mean, r.Exact, r.Variance, r.MaxValue, r.CostPerRun)
	}
	return nil
}

func runLoadTime(cfg eval.Config) error {
	fmt.Println("=== Cold start: edge-list parse + v2 index vs self-contained v3 snapshot ===")
	res, err := eval.RunLoadTime(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; v3 snapshot: %.2f MB\n",
		res.Nodes, res.Edges, float64(res.IndexBytes)/(1<<20))
	w, flush := newTable("mode", "cold start (ms)", "speedup", "first query (ms)")
	defer flush()
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.1fx\t%.3f\n", r.Mode, r.Millis, r.Speedup, r.FirstQueryMillis)
	}
	return nil
}

func runQueryPath(cfg eval.Config) error {
	fmt.Println("=== Query hot path: per-query cost and work breakdown ===")
	res, err := eval.RunQueryPath(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; epsilon=%.2f sample-scale=%.2f; %d queries (1 warm-up)\n",
		res.Nodes, res.Edges, res.Epsilon, res.SampleScale, res.Queries)
	w, flush := newTable("metric", "per query")
	defer flush()
	fmt.Fprintf(w, "time (ms)\t%.3f\n", res.NsPerQuery/1e6)
	fmt.Fprintf(w, "allocs\t%.1f\n", res.AllocsPerQuery)
	fmt.Fprintf(w, "alloc bytes\t%.0f\n", res.BytesPerQuery)
	fmt.Fprintf(w, "walks sampled\t%.0f\n", res.Walks)
	fmt.Fprintf(w, "backward-walk cost\t%.0f\n", res.BackwardWalkCost)
	fmt.Fprintf(w, "index entries read\t%.0f\n", res.IndexEntriesRead)
	fmt.Fprintf(w, "hub hits\t%.0f\n", res.HubHits)
	fmt.Fprintf(w, "non-hub hits\t%.0f\n", res.NonHubHits)
	flush()

	fmt.Println("\n--- per-request epsilon sweep (one index, request-plane override) ---")
	w2, flush2 := newTable("request epsilon", "time (ms)", "speedup", "walks", "backward-walk cost", "index reads")
	defer flush2()
	for _, tier := range res.EpsilonSweep {
		fmt.Fprintf(w2, "%.2f (%gx build)\t%.3f\t%.2fx\t%.0f\t%.0f\t%.0f\n",
			tier.Epsilon, tier.Multiple, tier.NsPerQuery/1e6, tier.Speedup,
			tier.Walks, tier.BackwardWalkCost, tier.IndexEntriesRead)
	}
	flush2()

	fmt.Println("\n--- intra-query parallelism sweep (bit-identical scores at every level) ---")
	w3, flush3 := newTable("parallelism", "time (ms)", "speedup", "walk chunks")
	defer flush3()
	for _, tier := range res.ParallelSweep {
		fmt.Fprintf(w3, "%d\t%.3f\t%.2fx\t%.0f\n",
			tier.Parallelism, tier.NsPerQuery/1e6, tier.Speedup, tier.Chunks)
	}
	return nil
}

func runUpdateCost(cfg eval.Config) error {
	fmt.Println("=== Dynamic graphs: incremental hub maintenance vs full rebuild ===")
	res, err := eval.RunUpdateCost(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; epsilon=%.2f, %d hubs; full build %.0f ms; parity over %d queries\n",
		res.Nodes, res.Edges, res.Epsilon, res.NumHubs, res.BuildMillis, res.Queries)
	w, flush := newTable("batch", "mode", "hubs recomputed", "fraction", "entries rewritten", "apply (ms)", "rebuild (ms)", "speedup", "max |diff|")
	defer flush()
	for _, r := range res.Rows {
		mode := "exact"
		if r.DriftBudget > 0 {
			mode = fmt.Sprintf("drift %.3g (skipped %d)", r.DriftBudget, r.HubsSkippedDrift)
		}
		fmt.Fprintf(w, "%d\t%s\t%d/%d\t%.1f%%\t%.1f%%\t%.1f\t%.1f\t%.1fx\t%.4f (2eps=%.2f)\n",
			r.BatchSize, mode, r.HubsRecomputed, r.HubsTotal, 100*r.FractionHubs,
			100*r.FractionEntries, r.ApplyMillis, r.RebuildMillis, r.Speedup,
			r.MaxAbsDiff, 2*res.Epsilon)
	}
	return nil
}

func runAdaptive(cfg eval.Config) error {
	fmt.Println("=== Adaptive sampling: early termination vs the fixed worst-case budget ===")
	res, err := eval.RunAdaptive(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges; build epsilon=%.2f sample-scale=%.2f; %d queries/tier, round budget %d, oracle %s (%d pooled sources)\n",
		res.Nodes, res.Edges, res.Epsilon, res.SampleScale, res.Queries, res.RoundsBudget, res.Oracle, res.ErrorQueries)
	w, flush := newTable("request epsilon", "fixed median (ms)", "fixed p99 (ms)", "adaptive median (ms)", "adaptive p99 (ms)", "speedup", "rounds", "stop rate", "fixed max err", "adaptive max err")
	defer flush()
	for _, t := range res.Tiers {
		fmt.Fprintf(w, "%.2f (%gx build)\t%.3f\t%.3f\t%.3f\t%.3f\t%.2fx\t%.1f/%d\t%.0f%%\t%.4f\t%.4f\n",
			t.Epsilon, t.Multiple, t.FixedMedianNs/1e6, t.FixedP99Ns/1e6,
			t.AdaptiveMedianNs/1e6, t.AdaptiveP99Ns/1e6, t.Speedup,
			t.RoundsExecuted, res.RoundsBudget, 100*t.EarlyStopRate,
			t.FixedMaxError, t.AdaptiveMaxError)
	}
	flush()

	fmt.Println("\n--- rounds saved by adaptive queries (fraction of the round budget) ---")
	w2, flush2 := newTable("request epsilon", "[0,20%)", "[20,40%)", "[40,60%)", "[60,80%)", "[80,100%]")
	defer flush2()
	for _, t := range res.Tiers {
		h := t.RoundsSavedHist
		fmt.Fprintf(w2, "%.2f\t%d\t%d\t%d\t%d\t%d\n", t.Epsilon, h[0], h[1], h[2], h[3], h[4])
	}
	return nil
}

func runSecondMoment(cfg eval.Config, datasets []string) error {
	fmt.Println("=== Hardness measure: reverse-PageRank second moment per dataset ===")
	rows, err := eval.RunSecondMoments(cfg, datasets)
	if err != nil {
		return err
	}
	w, flush := newTable("dataset", "sum pi(w)^2", "fitted gamma")
	defer flush()
	for _, r := range rows {
		gamma := "n/a"
		if r.GammaOK {
			gamma = fmt.Sprintf("%.2f", r.Gamma)
		}
		fmt.Fprintf(w, "%s\t%.6f\t%s\n", r.Dataset, r.SecondMoment, gamma)
	}
	return nil
}
