package prsim

import (
	"math"
	"testing"

	"prsim/internal/powermethod"
)

// TestIntegrationAlgorithmsAgree builds a moderately sized power-law graph,
// computes exact SimRank with the power method, and checks that PRSim and
// ProbeSim stay within their error budgets end to end through the public API.
func TestIntegrationAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping integration test in -short mode")
	}
	g, err := GeneratePowerLawGraph(800, 6, 2.2, true, 77)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	exact, err := powermethod.Compute(g.Internal(), powermethod.Options{C: DefaultDecay, Iterations: 25})
	if err != nil {
		t.Fatalf("powermethod: %v", err)
	}

	const source = 42
	prsimIdx, err := BuildIndex(g, Options{Epsilon: 0.1, Seed: 5, SampleScale: 0.5})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	res, err := prsimIdx.Query(source)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	maxErr := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		if v == source {
			continue
		}
		if diff := math.Abs(res.Score(v) - exact.At(source, v)); diff > maxErr {
			maxErr = diff
		}
	}
	if maxErr > 0.1 {
		t.Errorf("PRSim deviates from exact SimRank by %v, budget 0.1", maxErr)
	}

	probe, err := NewAlgorithm("ProbeSim", g, BaselineConfig{Epsilon: 0.1, Seed: 5, SampleScale: 0.5})
	if err != nil {
		t.Fatalf("ProbeSim: %v", err)
	}
	probeScores, err := probe.SingleSource(source)
	if err != nil {
		t.Fatalf("ProbeSim query: %v", err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if v == source {
			continue
		}
		if math.Abs(probeScores[v]-exact.At(source, v)) > 0.12 {
			t.Errorf("ProbeSim deviates at node %d: %v vs %v", v, probeScores[v], exact.At(source, v))
		}
	}
}

// TestIntegrationSimRankSymmetry checks the SimRank symmetry property
// s(u, v) = s(v, u) through two independent PRSim single-source queries.
func TestIntegrationSimRankSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping symmetry test in -short mode")
	}
	g, err := GeneratePowerLawGraph(400, 6, 2.0, false, 9)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	idx, err := BuildIndex(g, Options{Epsilon: 0.1, Seed: 2})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	pairs := [][2]int{{3, 17}, {50, 120}, {200, 399}}
	for _, p := range pairs {
		a, err := idx.Query(p[0])
		if err != nil {
			t.Fatalf("Query(%d): %v", p[0], err)
		}
		b, err := idx.Query(p[1])
		if err != nil {
			t.Fatalf("Query(%d): %v", p[1], err)
		}
		if diff := math.Abs(a.Score(p[1]) - b.Score(p[0])); diff > 0.2 {
			t.Errorf("symmetry violated for (%d,%d): %v vs %v", p[0], p[1], a.Score(p[1]), b.Score(p[0]))
		}
	}
}

// TestIntegrationIndexPersistence round-trips an index through serialization
// on a non-trivial graph and checks that a loaded index answers queries
// identically to the original for the same seed.
func TestIntegrationIndexPersistence(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping persistence test in -short mode")
	}
	g, err := GeneratePowerLawGraph(800, 8, 2.3, true, 13)
	if err != nil {
		t.Fatalf("GeneratePowerLawGraph: %v", err)
	}
	idx, err := BuildIndex(g, Options{Epsilon: 0.2, Seed: 21, SampleScale: 0.2})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := t.TempDir() + "/index.prsim"
	if err := idx.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadIndexFile(path, g)
	if err != nil {
		t.Fatalf("LoadIndexFile: %v", err)
	}
	orig, err := idx.Query(10)
	if err != nil {
		t.Fatalf("Query original: %v", err)
	}
	restored, err := loaded.Query(10)
	if err != nil {
		t.Fatalf("Query loaded: %v", err)
	}
	if len(orig.Scores()) != len(restored.Scores()) {
		t.Fatalf("support size changed after reload: %d vs %d", len(orig.Scores()), len(restored.Scores()))
	}
	for v, s := range orig.Scores() {
		if restored.Score(v) != s {
			t.Errorf("score for node %d changed after reload: %v vs %v", v, s, restored.Score(v))
		}
	}
}
