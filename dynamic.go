package prsim

import (
	"fmt"
	"io"

	"prsim/internal/core"
	"prsim/internal/graph"
	"prsim/internal/router"
	"prsim/internal/snapshot"
)

// EdgeUpdate is one streamed edge mutation: an insertion of (From, To), or a
// deletion when Delete is set. Batches of updates feed Index.ApplyUpdates.
type EdgeUpdate struct {
	From int
	To   int
	// Delete removes the edge instead of inserting it.
	Delete bool
}

// UpdateStats reports what one incremental ApplyUpdates touched: how many
// hubs were recomputed versus carried over verbatim, how much of the entry
// slab was rewritten, and where the time went. RecomputedHubs and Endpoints
// together form the update's impact set — Served.Update uses them to decide
// which cached query results survive the hot swap.
type UpdateStats struct {
	// Updates is the number of edge mutations applied.
	Updates int
	// HubsTotal and HubsRecomputed count the index's hubs and the subset whose
	// backward-search levels were recomputed; every other hub's entries are
	// byte-identical to the previous index. HubsExact counts hubs tested with
	// exact activation-set detection; the rest (hubs of a freshly loaded
	// snapshot, not yet recomputed in this process) used the conservative
	// residue-bound fallback, which over-marks.
	HubsTotal      int
	HubsRecomputed int
	HubsExact      int
	// HubsSkippedDrift counts perturbed hubs carried verbatim under an
	// UpdateOptions.DriftBudget; zero for exact (default) updates.
	HubsSkippedDrift int
	// FractionHubs is HubsRecomputed / HubsTotal — the paper-facing update
	// cost metric (the updatecost experiment checks it stays well under 1).
	FractionHubs float64
	// EntriesRewritten and EntriesCarried split the successor's entry slab
	// into entries recomputed for dirty hubs and entries copied verbatim.
	EntriesRewritten int
	EntriesCarried   int
	// FractionEntries is EntriesRewritten / total entries after the update.
	FractionEntries float64
	// RecomputedHubs and Endpoints list the affected hub node ids and the
	// distinct update endpoint ids, both ascending.
	RecomputedHubs []int
	Endpoints      []int
	// DetectSeconds is the affected-hub detection pass, PageRankSeconds the
	// exact reverse-PageRank recomputation, PushSeconds the dirty-hub backward
	// searches plus slab rebuild; TotalSeconds covers the whole apply.
	DetectSeconds   float64
	PageRankSeconds float64
	PushSeconds     float64
	TotalSeconds    float64

	// inner carries the internal stats through to Served.Update, whose
	// impact-filtered cache retention needs the raw form.
	inner *core.UpdateStats
}

func wrapUpdateStats(st *core.UpdateStats) *UpdateStats {
	if st == nil {
		return nil
	}
	return &UpdateStats{
		Updates:          st.Updates,
		HubsTotal:        st.HubsTotal,
		HubsRecomputed:   st.HubsRecomputed,
		HubsExact:        st.HubsExact,
		HubsSkippedDrift: st.HubsSkippedDrift,
		FractionHubs:     st.FractionHubs,
		EntriesRewritten: st.EntriesRewritten,
		EntriesCarried:   st.EntriesCarried,
		FractionEntries:  st.FractionEntries,
		RecomputedHubs:   st.RecomputedHubs,
		Endpoints:        st.Endpoints,
		DetectSeconds:    st.DetectTime.Seconds(),
		PageRankSeconds:  st.PageRankTime.Seconds(),
		PushSeconds:      st.PushTime.Seconds(),
		TotalSeconds:     st.TotalTime.Seconds(),
		inner:            st,
	}
}

// ApplyUpdates derives a new index serving the graph with the given edge
// mutations applied, recomputing only the hubs an update can actually perturb
// (typically a small fraction — see UpdateStats.FractionHubs). The receiver
// is left untouched and fully serviceable: both indexes can serve
// concurrently during a handover, and the successor owns heap copies of
// everything, so a snapshot-backed receiver can be Closed once traffic has
// moved over (Served.Update does exactly that).
//
// The result is bit-identical to BuildIndex over the mutated graph with the
// same options and the predecessor's hub set. An empty batch returns the
// receiver itself.
func (idx *Index) ApplyUpdates(updates []EdgeUpdate) (*Index, *UpdateStats, error) {
	return idx.ApplyUpdatesOpts(updates, UpdateOptions{})
}

// UpdateOptions tunes one ApplyUpdatesOpts call. The zero value keeps the
// exact (bit-identical) contract.
type UpdateOptions struct {
	// DriftBudget θ > 0 lets hubs whose total perturbation is at most θ·rmax
	// keep their entries verbatim instead of recomputing, shrinking the
	// update's footprint at the cost of a bounded score drift (within the
	// truncation slack the index already tolerates — worst case roughly
	// (1+θ)·ε, far smaller in practice). Useful range is (0, 1]; zero means
	// exact. Requires the index's in-memory activation sets; hubs still on
	// the conservative fallback path always recompute when marked.
	DriftBudget float64
}

// ApplyUpdatesOpts is ApplyUpdates with per-call tuning; see UpdateOptions.
func (idx *Index) ApplyUpdatesOpts(updates []EdgeUpdate, uo UpdateOptions) (*Index, *UpdateStats, error) {
	ups := make([]graph.EdgeUpdate, len(updates))
	for i, u := range updates {
		ups[i] = graph.EdgeUpdate{From: u.From, To: u.To, Delete: u.Delete}
	}
	nidx, st, err := idx.idx.ApplyUpdatesOpts(ups, core.UpdateOptions{DriftBudget: uo.DriftBudget})
	if err != nil {
		return nil, nil, err
	}
	if nidx == idx.idx {
		return idx, wrapUpdateStats(st), nil
	}
	return &Index{g: wrapGraph(nidx.Graph()), idx: nidx}, wrapUpdateStats(st), nil
}

// SnapshotGens identifies a snapshot's position in its update lineage: which
// BuildIndex ancestry it descends from and how many ApplyUpdates steps it is
// past the build. It is the key delta snapshots are addressed by — WriteDelta
// takes the *base* snapshot's gens and ships only the sections newer than it.
// Obtain one from Index.Gens (the in-memory index) or SnapshotFileGens (an
// on-disk file, without loading it).
type SnapshotGens struct {
	g core.SnapshotGens
}

// Generation returns the snapshot's update generation: 1 for a fresh build,
// +1 per ApplyUpdates batch since.
func (s SnapshotGens) Generation() uint64 { return s.g.Generation }

// Gens returns the index's generation stamps.
func (idx *Index) Gens() SnapshotGens { return SnapshotGens{g: idx.idx.Gens()} }

// Generation returns the index's update generation (1 for a fresh build, +1
// per applied batch).
func (idx *Index) Generation() uint64 { return idx.idx.Gens().Generation }

// SnapshotFileGens reads the generation stamps of a saved snapshot from its
// header without loading the file. ok is false for pre-v4 snapshots, which
// carry no stamps and cannot serve as a delta base until rewritten by Save.
func SnapshotFileGens(path string) (SnapshotGens, bool, error) {
	g, ok, err := core.ReadSnapshotGens(path)
	return SnapshotGens{g: g}, ok, err
}

// WriteDelta writes a delta snapshot against a base with the given gens: only
// the sections whose bytes changed since the base generation ship, so a small
// update batch yields a delta far smaller than the full snapshot. The base
// must share the index's lineage and be strictly older. OpenSnapshotDelta
// layers the delta back over the base file.
func (idx *Index) WriteDelta(w io.Writer, base SnapshotGens) error {
	return idx.idx.WriteDelta(w, base.g)
}

// WriteDeltaFile writes a delta snapshot to a file.
func (idx *Index) WriteDeltaFile(path string, base SnapshotGens) error {
	return idx.idx.WriteDeltaFile(path, base.g)
}

// DeltaSize returns the exact byte size a WriteDelta against the given base
// would produce, without writing it — serving layers compare it against the
// full snapshot size to decide between publishing a delta and a full rewrite.
func (idx *Index) DeltaSize(base SnapshotGens) (uint64, error) {
	return idx.idx.DeltaSize(base.g)
}

// OpenSnapshotDelta opens the successor snapshot described by a delta file
// layered over its base snapshot, without materializing the spliced file:
// both files are memory-mapped and every section is served zero-copy from
// whichever file holds its current bytes. Queries are bit-identical to
// opening a full Save of the successor. The base must be the v4 snapshot the
// delta was written against (same lineage and generation); mismatches fail at
// open. Falls back to splice-and-stream on platforms without mmap support.
func OpenSnapshotDelta(basePath, deltaPath string) (*Index, error) {
	snap, err := snapshot.OpenDelta(basePath, deltaPath, snapshot.Options{})
	if err != nil {
		return nil, err
	}
	idx, err := snap.Index()
	if err != nil {
		snap.Close()
		return nil, err
	}
	sg, err := snap.Graph()
	if err != nil {
		snap.Close()
		return nil, err
	}
	snap.WarmUp()
	return &Index{g: wrapGraph(sg), idx: idx, snap: snap}, nil
}

// Update hot-swaps every shard of a served graph onto an ApplyUpdates
// successor without an opener round trip and without dropping in-flight
// requests, then closes the previous backing once traffic drains. When st is
// the stats of the apply that produced idx, each shard's result cache keeps
// the entries provably untouched by the update (source and score support
// disjoint from the recomputed hubs and update endpoints) instead of purging
// wholesale; pass nil to purge. The swap does not bump the reload generation —
// use Index.Generation to observe update progress.
func (s *Served) Update(idx *Index, st *UpdateStats) error {
	if idx == nil {
		return fmt.Errorf("prsim: nil index")
	}
	var impact *core.UpdateStats
	if st != nil {
		impact = st.inner
	}
	return s.s.Update(router.Opened{
		Index: idx.idx,
		Res:   idx.engineResource(),
		Close: idx.Close,
		Tag:   idx,
	}, impact)
}
